#ifndef XSQL_SERVER_CONCURRENCY_H_
#define XSQL_SERVER_CONCURRENCY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/exec_context.h"
#include "common/status.h"
#include "eval/session.h"
#include "storage/recovery.h"
#include "storage/version.h"
#include "storage/wal.h"

namespace xsql {

namespace obs {
class StatusRegistry;
}  // namespace obs

namespace server {

class ReplicationHub;

/// Writer-writer ordering latch with deadline/cancel-aware acquisition.
///
/// Under MVCC this no longer serializes readers against writers — reads
/// run latch-free against a pinned snapshot (see ConcurrencyManager).
/// The exclusive side orders mutations, checkpoints, replica apply, and
/// bootstrap capture against each other; the shared side remains for
/// callers that need to exclude those administrative phases without
/// claiming them (none on the statement path today).
///
/// Acquisition polls in short slices so a waiting statement honors the
/// same guardrails as a running one: the session's wall-clock deadline
/// (`ExecLimits::deadline_ms`) and its cancel token. A tripped wait
/// reports the machine-checkable marker `(guard: latch-wait)`, in the
/// style of the execution guards.
class StatementLatch {
 public:
  Status AcquireShared(const ExecLimits& limits,
                       const std::shared_ptr<CancelToken>& cancel);
  void ReleaseShared();
  Status AcquireExclusive(const ExecLimits& limits,
                          const std::shared_ptr<CancelToken>& cancel);
  void ReleaseExclusive();

  uint64_t shared_acquires() const {
    return shared_acquires_.load(std::memory_order_relaxed);
  }
  uint64_t exclusive_acquires() const {
    return exclusive_acquires_.load(std::memory_order_relaxed);
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int readers_ = 0;
  bool writer_ = false;
  int writers_waiting_ = 0;
  std::atomic<uint64_t> shared_acquires_{0};
  std::atomic<uint64_t> exclusive_acquires_{0};
};

/// How a statement executes under MVCC.
enum class StatementMode {
  /// Pure read: runs latch-free against the pinned snapshot, sharing it
  /// with every other concurrent reader.
  kSharedRead,
  /// Read whose evaluation may write *scratch* state (re-materializing a
  /// stale view, a query-defined method minting objects, EXPLAIN
  /// ANALYZE's execute-and-rollback): runs latch-free against a private
  /// copy-on-write fork of the snapshot, which is discarded afterwards.
  kPrivateRead,
  /// Mutation (or unclassifiable statement): runs on the master database
  /// under the exclusive latch and commits through the WAL.
  kWrite,
};

/// Classifies how `text` must execute against the given (snapshot)
/// database + view catalog. Conservative by design: every statement that
/// could write *shared* state is kWrite; every statement that could
/// write only its own scratch state is kPrivateRead:
///
///   - mutation kinds (CREATE VIEW / ALTER CLASS / UPDATE CLASS) and OID
///     FUNCTION queries (they mint durable objects) are kWrite;
///   - unresolvable statements are kWrite (they fail before executing,
///     but there is no classification to trust — and a CREATE VIEW
///     referencing a not-yet-visible name resolves only at execution);
///   - EXPLAIN ANALYZE (executes for real, then rolls back) is
///     kPrivateRead;
///   - a statement that *mentions* a view is kSharedRead when the
///     snapshot's materialization of that view is fresh (reading it is
///     a pure read), kPrivateRead when it is stale or never built
///     (evaluation re-materializes — into the private fork);
///   - a statement that mentions a query-defined method is kPrivateRead:
///     invoking one can evaluate an OID clause and mint result objects.
///
/// The mention check lexes `text` and intersects its identifiers with
/// the snapshot's catalogs, so it never misses a reference at the price
/// of the occasional false positive (e.g. a string literal shares a
/// view's name — harmless, the statement merely runs on a private fork).
StatementMode ClassifyMode(const std::string& text,
                           const storage::StatementClass& cls,
                           const Database& db, const ViewManager& views);

/// Multi-session front end over ONE DurableDatabase: the server's
/// execution core, also usable in-process (the benchmarks drive it
/// directly).
///
/// Execution protocol per statement (MVCC snapshot reads):
///   1. pin the current head version (a shared_ptr load — no latch) and
///      classify against it;
///   2. kSharedRead: execute right here against the pinned snapshot via
///      a throwaway per-statement Session (connection guardrails, shared
///      plan cache) — any number of readers in parallel, unaffected by
///      concurrent writers;
///   3. kPrivateRead: same, but against a private COW fork of the
///      snapshot that absorbs scratch writes and is then discarded;
///   4. kWrite: acquire the latch *exclusive*, execute via
///      DurableDatabase::ExecuteForCommit (which enqueues the WAL record
///      under the latch — ticket order = execution order), fork the
///      post-statement state as the next version (sequence assigned
///      under the latch, so version order = WAL order), release;
///   5. wait for the ticket's group commit *after* releasing — the next
///      writer executes while this record's fsync is in flight — and
///      only then install the forked version as the new head: readers
///      never observe a state that is not yet durable, and a connection
///      always sees its own committed writes (install precedes the ack);
///   6. a failed commit wedges the database (in-memory state is ahead
///      of durable state with no way back; reopening recovers the
///      durable prefix) and installs nothing — readers keep the last
///      durable version.
///
/// Sessions share the primary session's view catalog, so a view created
/// on any connection resolves on all of them; each installed version
/// carries an immutable clone of that catalog for its readers.
class ConcurrencyManager {
 public:
  struct Options {
    /// Checkpoint after this many durable mutations (0 = manual only).
    /// Rotation drains the group committer and runs under the exclusive
    /// latch, replacing DurableDatabase's own auto-checkpointing, which
    /// is disabled on the ExecuteForCommit path.
    uint64_t checkpoint_every = 0;
    /// Replication subscribers (owned by the Server). Non-null makes a
    /// wedged database answer with a *retryable* unavailability when a
    /// replica ever subscribed — clients fail over instead of giving up.
    ReplicationHub* hub = nullptr;
    /// Semi-synchronous replication: after a commit is locally durable,
    /// wait (bounded) until every live subscriber acked it. A timeout —
    /// or no subscriber — degrades to async with a metrics breadcrumb
    /// (`xsql.repl.sync_degraded`) rather than failing the write.
    bool sync_replication = false;
    int sync_replication_timeout_ms = 1000;
    /// Status board to publish generation / WAL / dedup / MVCC positions
    /// on (null = don't publish).
    obs::StatusRegistry* status = nullptr;
  };

  ConcurrencyManager(storage::DurableDatabase* dd, Options options);
  explicit ConcurrencyManager(storage::DurableDatabase* dd)
      : ConcurrencyManager(dd, Options()) {}

  /// Registers a new session (exclusive latch: session creation must not
  /// interleave with a mutation's fork point). `options` carries the
  /// connection's guardrails and cancel token.
  Result<uint64_t> CreateSession(SessionOptions options);
  void CloseSession(uint64_t id);
  /// The session object, or null. Stable until CloseSession; only its
  /// owning connection thread may Execute through it at a time.
  Session* session(uint64_t id);
  uint64_t open_sessions() const;

  /// Runs one statement for `session_id` under the protocol above.
  Result<EvalOutput> Execute(uint64_t session_id, const std::string& text);

  /// The exactly-once form: `rid` identifies the request across
  /// retries. Consults the durable dedup table first — a retry of a
  /// committed statement returns its cached rendered reply without
  /// re-executing (or a final "expired" error if the reply has been
  /// evicted); a stale seq (superseded by a later statement from the
  /// same client) is rejected; a duplicate racing the original waits
  /// for it. Otherwise executes like Execute with the WAL record
  /// stamped by `rid`, and records the rendered reply in the dedup
  /// table only once the commit is durable — so a crash before the
  /// fsync leaves no entry and the client's retry re-executes against
  /// the recovered (statement-free) state. The record lands before any
  /// checkpoint can serialize the table (Checkpoint waits for in-
  /// flight recordings), so a crash *after* a rotation can never lose
  /// the entry while keeping the mutation. Returns the rendered reply
  /// text (what the server ships in the kResult frame).
  Result<std::string> ExecuteIdempotent(uint64_t session_id,
                                        const storage::RequestId& rid,
                                        const std::string& text);

  /// Drains in-flight commits and rotates the generation, all under the
  /// exclusive latch.
  Status Checkpoint();

  /// Replays replicated WAL records (replica apply path): executes the
  /// statements, stamps the dedup table, appends the records to the
  /// local WAL, and installs the post-batch state as the new read
  /// snapshot — all under the exclusive latch, so replica reads never
  /// see a half-applied batch. Returns the number applied.
  Result<uint64_t> ApplyReplicated(const std::vector<std::string>& records);

  /// Captures a bootstrap bundle for a subscriber: exclusive latch +
  /// committer drain make the on-disk generation files byte-equal to
  /// the in-memory state; the bundle's generation is pinned against
  /// retention pruning (caller unpins).
  Result<storage::BootstrapBundle> BuildBootstrapBundle();

  /// Classifies `text` against the current snapshot (no latch): would it
  /// need the exclusive latch? The replica server's write fence.
  Result<bool> StatementNeedsExclusive(const std::string& text);

  /// Publishes generation / WAL / dedup / MVCC positions to
  /// `options_.status` (no-op when null).
  void PublishStatus();

  /// Pins the current head version and returns it: what every read
  /// statement does internally. Exposed so tests and benchmarks can
  /// hold a snapshot across writes (version-GC coverage) or read one
  /// directly.
  std::shared_ptr<const storage::DatabaseVersion> PinSnapshot() const {
    return chain_.Head();
  }

  storage::DurableDatabase& durable() { return *dd_; }
  storage::GroupCommitter& committer() { return committer_; }
  StatementLatch& latch() { return latch_; }
  uint64_t statements_executed() const {
    return statements_.load(std::memory_order_relaxed);
  }

 private:
  /// The shared body of Execute / ExecuteIdempotent. When `rid` is
  /// non-null the WAL record is stamped with it, and once the commit is
  /// durable the rendered reply is recorded in the dedup table (and
  /// returned via `*reply`) *before* the auto-checkpoint trigger — the
  /// rotation that discards the stamped WAL record must serialize a
  /// table that already holds the entry. `*committed` reports whether a
  /// mutation became durable.
  Result<EvalOutput> ExecuteInternal(Session* session,
                                     const std::string& text,
                                     const storage::RequestId* rid,
                                     bool* committed, std::string* reply);

  /// Forks the master's post-statement state as the next version.
  /// MUST be called under the exclusive latch: the sequence assigned
  /// here is what keeps version order equal to WAL order, and the fork
  /// also starts a new COW epoch on the master.
  std::shared_ptr<storage::DatabaseVersion> ForkVersionLocked();

  /// Rebuilds Database::ActiveDomain()'s lazy cache. Called before
  /// every exclusive-latch release (mutation, rollback, and checkpoint
  /// paths alike) so the next fork finds the cache warm and snapshots
  /// are born clean (their mutable lazy members never rebuilt by
  /// readers).
  void PrewarmActiveDomain();

  storage::DurableDatabase* dd_;
  Options options_;
  storage::GroupCommitter committer_;
  StatementLatch latch_;
  storage::VersionChain chain_;

  mutable std::mutex sessions_mu_;
  std::map<uint64_t, std::unique_ptr<Session>> sessions_;
  uint64_t next_session_id_ = 0;

  std::atomic<uint64_t> statements_{0};
  std::atomic<uint64_t> mutations_since_checkpoint_{0};

  /// Rid-stamped commits that are enqueued (claimed under the
  /// exclusive latch) but not yet recorded in the dedup table.
  /// Checkpoint() waits for this to drain after Drain() and before
  /// serializing, closing the window where a rotation could persist a
  /// table missing an entry whose WAL record it just discarded.
  std::mutex pending_mu_;
  std::condition_variable pending_cv_;
  uint64_t pending_rid_commits_ = 0;
};

}  // namespace server
}  // namespace xsql

#endif  // XSQL_SERVER_CONCURRENCY_H_
