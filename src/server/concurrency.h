#ifndef XSQL_SERVER_CONCURRENCY_H_
#define XSQL_SERVER_CONCURRENCY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/exec_context.h"
#include "common/status.h"
#include "eval/session.h"
#include "storage/recovery.h"
#include "storage/wal.h"

namespace xsql {

namespace obs {
class StatusRegistry;
}  // namespace obs

namespace server {

class ReplicationHub;

/// Statement-level shared/exclusive latch with writer preference and
/// deadline/cancel-aware acquisition.
///
/// Read-only statements hold it shared (run in parallel); anything
/// that can mutate holds it exclusive (serialized). Writer preference
/// — arriving readers queue behind a waiting writer — keeps a steady
/// read load from starving mutations.
///
/// Acquisition polls in short slices so a waiting statement honors the
/// same guardrails as a running one: the session's wall-clock deadline
/// (`ExecLimits::deadline_ms`) and its cancel token. A tripped wait
/// reports the machine-checkable marker `(guard: latch-wait)`, in the
/// style of the execution guards.
class StatementLatch {
 public:
  Status AcquireShared(const ExecLimits& limits,
                       const std::shared_ptr<CancelToken>& cancel);
  void ReleaseShared();
  Status AcquireExclusive(const ExecLimits& limits,
                          const std::shared_ptr<CancelToken>& cancel);
  void ReleaseExclusive();

  uint64_t shared_acquires() const {
    return shared_acquires_.load(std::memory_order_relaxed);
  }
  uint64_t exclusive_acquires() const {
    return exclusive_acquires_.load(std::memory_order_relaxed);
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int readers_ = 0;
  bool writer_ = false;
  int writers_waiting_ = 0;
  std::atomic<uint64_t> shared_acquires_{0};
  std::atomic<uint64_t> exclusive_acquires_{0};
};

/// Whether `text` must run under the exclusive latch. Conservative by
/// design: every statement that *could* write shared state — including
/// through the engine's lazy-mutation trapdoors — is exclusive, so the
/// shared path touches strictly read-only code.
///
///   - mutation kinds (CREATE VIEW / ALTER CLASS / UPDATE CLASS), OID
///     FUNCTION queries (they mint objects), and EXPLAIN ANALYZE (it
///     executes for real, then rolls back);
///   - any statement that *mentions* a view name: evaluating a view
///     reference materializes it lazily into the shared database;
///   - any statement that mentions a query-defined method name:
///     invoking one can evaluate an OID clause and mint result objects;
///   - unresolvable statements (they fail before executing, but we have
///     no classification to trust — and a CREATE VIEW referencing a
///     not-yet-visible name resolves only at execution).
///
/// The mention check lexes `text` and intersects its identifiers with
/// the live catalogs, so it never misses a reference at the price of
/// the occasional false positive (e.g. a string literal shares a view's
/// name — harmless, the statement merely serializes).
bool NeedsExclusive(const std::string& text,
                    const storage::StatementClass& cls, const Database& db,
                    const ViewManager& views);

/// Multi-session front end over ONE DurableDatabase: the server's
/// execution core, also usable in-process (the benchmarks drive it
/// directly).
///
/// Execution protocol per statement:
///   1. acquire the latch *shared* and classify under it (classification
///      resolves names against the live schema, so it needs at least a
///      read latch);
///   2. read-only: run in place, release, reply — reads run in parallel;
///   3. otherwise escalate: release shared, acquire *exclusive*,
///      execute via DurableDatabase::ExecuteForCommit (which enqueues
///      the WAL record under the latch — ticket order = execution
///      order), pre-warm the active-domain cache, release;
///   4. wait for the ticket's group commit *after* releasing, so the
///      next writer executes while this record's fsync is in flight —
///      that overlap is the whole point of group commit;
///   5. a failed commit wedges the database (in-memory state is ahead
///      of durable state with no way back; reopening recovers the
///      durable prefix).
///
/// Sessions share the primary session's view catalog, so a view created
/// on any connection resolves on all of them.
class ConcurrencyManager {
 public:
  struct Options {
    /// Checkpoint after this many durable mutations (0 = manual only).
    /// Rotation drains the group committer and runs under the exclusive
    /// latch, replacing DurableDatabase's own auto-checkpointing, which
    /// is disabled on the ExecuteForCommit path.
    uint64_t checkpoint_every = 0;
    /// Replication subscribers (owned by the Server). Non-null makes a
    /// wedged database answer with a *retryable* unavailability when a
    /// replica ever subscribed — clients fail over instead of giving up.
    ReplicationHub* hub = nullptr;
    /// Semi-synchronous replication: after a commit is locally durable,
    /// wait (bounded) until every live subscriber acked it. A timeout —
    /// or no subscriber — degrades to async with a metrics breadcrumb
    /// (`xsql.repl.sync_degraded`) rather than failing the write.
    bool sync_replication = false;
    int sync_replication_timeout_ms = 1000;
    /// Status board to publish generation / WAL / dedup positions on
    /// (null = don't publish).
    obs::StatusRegistry* status = nullptr;
  };

  ConcurrencyManager(storage::DurableDatabase* dd, Options options);
  explicit ConcurrencyManager(storage::DurableDatabase* dd)
      : ConcurrencyManager(dd, Options()) {}

  /// Registers a new session (exclusive latch: the Session constructor
  /// installs introspection methods into the shared database).
  /// `options` carries the connection's guardrails and cancel token.
  Result<uint64_t> CreateSession(SessionOptions options);
  void CloseSession(uint64_t id);
  /// The session object, or null. Stable until CloseSession; only its
  /// owning connection thread may Execute through it at a time.
  Session* session(uint64_t id);
  uint64_t open_sessions() const;

  /// Runs one statement for `session_id` under the protocol above.
  Result<EvalOutput> Execute(uint64_t session_id, const std::string& text);

  /// The exactly-once form: `rid` identifies the request across
  /// retries. Consults the durable dedup table first — a retry of a
  /// committed statement returns its cached rendered reply without
  /// re-executing (or a final "expired" error if the reply has been
  /// evicted); a stale seq (superseded by a later statement from the
  /// same client) is rejected; a duplicate racing the original waits
  /// for it. Otherwise executes like Execute with the WAL record
  /// stamped by `rid`, and records the rendered reply in the dedup
  /// table only once the commit is durable — so a crash before the
  /// fsync leaves no entry and the client's retry re-executes against
  /// the recovered (statement-free) state. The record lands before any
  /// checkpoint can serialize the table (Checkpoint waits for in-
  /// flight recordings), so a crash *after* a rotation can never lose
  /// the entry while keeping the mutation. Returns the rendered reply
  /// text (what the server ships in the kResult frame).
  Result<std::string> ExecuteIdempotent(uint64_t session_id,
                                        const storage::RequestId& rid,
                                        const std::string& text);

  /// Drains in-flight commits and rotates the generation, all under the
  /// exclusive latch.
  Status Checkpoint();

  /// Replays replicated WAL records (replica apply path): executes the
  /// statements, stamps the dedup table, and appends the records to the
  /// local WAL — all under the exclusive latch, so replica reads never
  /// see a half-applied batch. Returns the number applied.
  Result<uint64_t> ApplyReplicated(const std::vector<std::string>& records);

  /// Captures a bootstrap bundle for a subscriber: exclusive latch +
  /// committer drain make the on-disk generation files byte-equal to
  /// the in-memory state; the bundle's generation is pinned against
  /// retention pruning (caller unpins).
  Result<storage::BootstrapBundle> BuildBootstrapBundle();

  /// Classifies `text` under a shared latch: would it need the
  /// exclusive latch? The replica server's write fence.
  Result<bool> StatementNeedsExclusive(const std::string& text);

  /// Publishes generation / WAL / dedup positions to `options_.status`
  /// (no-op when null).
  void PublishStatus();

  storage::DurableDatabase& durable() { return *dd_; }
  storage::GroupCommitter& committer() { return committer_; }
  StatementLatch& latch() { return latch_; }
  uint64_t statements_executed() const {
    return statements_.load(std::memory_order_relaxed);
  }

 private:
  /// The shared body of Execute / ExecuteIdempotent: the three-phase
  /// latch protocol. When `rid` is non-null the WAL record is stamped
  /// with it, and once the commit is durable the rendered reply is
  /// recorded in the dedup table (and returned via `*reply`) *before*
  /// the auto-checkpoint trigger — the rotation that discards the
  /// stamped WAL record must serialize a table that already holds the
  /// entry. `*committed` reports whether a mutation became durable.
  Result<EvalOutput> ExecuteInternal(Session* session,
                                     const std::string& text,
                                     const storage::RequestId* rid,
                                     bool* committed, std::string* reply);

  /// Rebuilds Database::ActiveDomain()'s lazy cache. Called before
  /// every exclusive-latch release (mutation, rollback, and checkpoint
  /// paths alike): the cache is a mutable member the first reader would
  /// otherwise rebuild racily under a *shared* latch.
  void PrewarmActiveDomain();

  storage::DurableDatabase* dd_;
  Options options_;
  storage::GroupCommitter committer_;
  StatementLatch latch_;

  mutable std::mutex sessions_mu_;
  std::map<uint64_t, std::unique_ptr<Session>> sessions_;
  uint64_t next_session_id_ = 0;

  std::atomic<uint64_t> statements_{0};
  std::atomic<uint64_t> mutations_since_checkpoint_{0};

  /// Rid-stamped commits that are enqueued (claimed under the
  /// exclusive latch) but not yet recorded in the dedup table.
  /// Checkpoint() waits for this to drain after Drain() and before
  /// serializing, closing the window where a rotation could persist a
  /// table missing an entry whose WAL record it just discarded.
  std::mutex pending_mu_;
  std::condition_variable pending_cv_;
  uint64_t pending_rid_commits_ = 0;
};

}  // namespace server
}  // namespace xsql

#endif  // XSQL_SERVER_CONCURRENCY_H_
