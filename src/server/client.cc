#include "server/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <optional>
#include <random>
#include <thread>

namespace xsql {
namespace server {

namespace {

using Clock = std::chrono::steady_clock;

std::array<uint8_t, 16> MintUuid() {
  std::random_device rd;
  std::array<uint8_t, 16> out;
  for (size_t i = 0; i < out.size(); i += 4) {
    uint32_t word = rd();
    out[i] = static_cast<uint8_t>(word & 0xFF);
    out[i + 1] = static_cast<uint8_t>((word >> 8) & 0xFF);
    out[i + 2] = static_cast<uint8_t>((word >> 16) & 0xFF);
    out[i + 3] = static_cast<uint8_t>((word >> 24) & 0xFF);
  }
  return out;
}

uint64_t SeedFromUuid(const std::array<uint8_t, 16>& uuid) {
  uint64_t seed = 0x9E3779B97F4A7C15ull;
  for (uint8_t b : uuid) seed = (seed ^ b) * 0x100000001B3ull;
  return seed == 0 ? 1 : seed;
}

bool AllZero(const std::array<uint8_t, 16>& uuid) {
  for (uint8_t b : uuid) {
    if (b != 0) return false;
  }
  return true;
}

/// Transport failures are the retryable class: the request or its
/// reply may have been lost in flight, so the statement's fate is
/// unknown. Remote verdicts (kError frames) arrive intact and are
/// final.
bool RetryableTransport(const Status& st) {
  switch (st.code()) {
    case StatusCode::kNotFound:           // EOF / peer reset
    case StatusCode::kResourceExhausted:  // reply deadline tripped
    case StatusCode::kRuntimeError:       // socket-level failure
    case StatusCode::kUnavailable:
      return true;
    default:
      return false;
  }
}

}  // namespace

Result<Client> Client::Connect(const std::string& host, int port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::RuntimeError(std::string("socket: ") + strerror(errno));
  }
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad IPv4 address '" + host + "'");
  }
  if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
              sizeof(addr)) < 0) {
    Status st =
        Status::RuntimeError(std::string("connect: ") + strerror(errno));
    close(fd);
    return st;
  }
  return Client(fd);
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    timeout_ms_ = other.timeout_ms_;
    other.fd_ = -1;
  }
  return *this;
}

Result<Frame> Client::Transact(MsgType type, const std::string& payload) {
  if (fd_ < 0) return Status::RuntimeError("client not connected");
  IoOptions io;
  io.io_timeout_ms = timeout_ms_;
  // The reply wait is "idleness" in wire terms; bound it by the same
  // per-request deadline.
  io.idle_timeout_ms = timeout_ms_;
  io.site = "cli";
  XSQL_RETURN_IF_ERROR(WriteAll(fd_, EncodeFrame(type, payload), io));
  return ReadFrame(fd_, io);
}

Result<std::string> Client::RoundTrip(uint8_t type,
                                      const std::string& payload) {
  XSQL_ASSIGN_OR_RETURN(
      Frame reply, Transact(static_cast<MsgType>(type), payload));
  if (reply.type == MsgType::kError) {
    // The payload is the remote Status rendered "CodeName: message".
    return Status::RuntimeError(reply.payload);
  }
  if (reply.type == MsgType::kUnavailable) {
    return Status::Unavailable(reply.payload);
  }
  if (reply.type != MsgType::kResult) {
    return Status::InvalidArgument("unexpected reply frame type");
  }
  return reply.payload;
}

Result<std::string> Client::Execute(const std::string& statement) {
  return RoundTrip(static_cast<uint8_t>(MsgType::kExecute), statement);
}

Result<std::string> Client::ExecuteWithId(const storage::RequestId& rid,
                                          const std::string& statement) {
  return RoundTrip(static_cast<uint8_t>(MsgType::kExecuteId),
                   rid.Encode() + statement);
}

Result<std::string> Client::Ping() {
  return RoundTrip(static_cast<uint8_t>(MsgType::kPing), "");
}

Status Client::Quit() {
  Result<std::string> bye =
      RoundTrip(static_cast<uint8_t>(MsgType::kQuit), "");
  Close();
  return bye.ok() ? Status::OK() : bye.status();
}

void Client::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

int ParseRetryAfterHint(const std::string& payload) {
  int ms = 0;
  size_t i = 0;
  while (i < payload.size() && payload[i] >= '0' && payload[i] <= '9') {
    ms = ms * 10 + (payload[i] - '0');
    if (ms > 60000) return 60000;  // a hostile hint won't park us long
    ++i;
  }
  return i == 0 ? 0 : ms;
}

RetryingClient::RetryingClient(RetryingClientOptions options)
    : options_(std::move(options)),
      uuid_(AllZero(options_.uuid) ? MintUuid() : options_.uuid),
      rng_(options_.jitter_seed != 0 ? options_.jitter_seed
                                     : SeedFromUuid(uuid_)) {}

void RetryingClient::set_port(int port) {
  options_.port = port;
  if (!options_.endpoints.empty()) {
    options_.endpoints[endpoint_index_ % options_.endpoints.size()].port =
        port;
  }
  conn_.Close();
}

void RetryingClient::Notice(const std::string& line) {
  if (options_.on_event) options_.on_event(line);
}

RetryingClient::Target RetryingClient::CurrentTarget() const {
  if (options_.endpoints.empty()) {
    return Target{options_.host, options_.port};
  }
  const RetryingClientOptions::Endpoint& e =
      options_.endpoints[endpoint_index_ % options_.endpoints.size()];
  return Target{e.host, e.port};
}

void RetryingClient::RotateEndpoint(const std::string& why) {
  if (options_.endpoints.size() < 2) return;
  conn_.Close();
  endpoint_index_ = (endpoint_index_ + 1) % options_.endpoints.size();
  ++failovers_;
  const Target t = CurrentTarget();
  Notice("failing over to " + t.host + ":" + std::to_string(t.port) +
         " (" + why + ")");
}

Status RetryingClient::EnsureConnected() {
  if (conn_.connected()) return Status::OK();
  const Target t = CurrentTarget();
  Result<Client> fresh = Client::Connect(t.host, t.port);
  if (!fresh.ok()) return fresh.status();
  conn_ = std::move(*fresh);
  conn_.set_timeout_ms(options_.timeout_ms);
  ++reconnects_;
  if (ever_connected_) {
    Notice("reconnected to " + t.host + ":" + std::to_string(t.port));
  }
  ever_connected_ = true;
  return Status::OK();
}

Result<std::string> RetryingClient::Execute(const std::string& statement) {
  return ExecuteSeq(++next_seq_, statement);
}

Result<std::string> RetryingClient::ExecuteSeq(
    uint64_t seq, const std::string& statement) {
  if (seq > next_seq_) next_seq_ = seq;
  storage::RequestId rid;
  rid.uuid = uuid_;
  rid.seq = seq;
  const std::string payload = rid.Encode() + statement;

  std::optional<Clock::time_point> deadline;
  if (options_.deadline_ms != 0) {
    deadline =
        Clock::now() + std::chrono::milliseconds(options_.deadline_ms);
  }
  Status last = Status::RuntimeError("no attempt made");
  int hint_ms = 0;
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      ++retries_;
      // Exponential backoff with jitter; the server's retry-after hint
      // is a floor, not a cap (it knows its own load).
      int shift = attempt - 1 > 16 ? 16 : attempt - 1;
      int64_t sleep_ms = static_cast<int64_t>(options_.backoff_base_ms)
                         << shift;
      if (sleep_ms > options_.backoff_max_ms) {
        sleep_ms = options_.backoff_max_ms;
      }
      if (sleep_ms > 0) {
        sleep_ms += static_cast<int64_t>(
            rng_.Uniform(static_cast<uint64_t>(sleep_ms) / 2 + 1));
      }
      if (sleep_ms < hint_ms) sleep_ms = hint_ms;
      if (deadline.has_value() &&
          Clock::now() + std::chrono::milliseconds(sleep_ms) >=
              *deadline) {
        return Status::ResourceExhausted(
            "retry deadline exceeded after " + std::to_string(attempt) +
            " attempts; last error: " + last.ToString());
      }
      if (sleep_ms > 0) {
        if (options_.sleep_fn) {
          options_.sleep_fn(sleep_ms);
        } else {
          std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
        }
      }
    }
    hint_ms = 0;
    Status conn = EnsureConnected();
    if (!conn.ok()) {
      last = conn;
      // A dead primary refuses connections; its replica is next.
      RotateEndpoint("connect failed");
      continue;
    }
    Result<Frame> reply = conn_.Transact(MsgType::kExecuteId, payload);
    if (!reply.ok()) {
      // Request or reply lost in flight: the statement's fate is
      // unknown. Drop the (possibly poisoned) connection and retry
      // the same rid — the dedup table makes that exactly-once, on
      // this server or on the promoted replica we rotate to.
      last = reply.status();
      conn_.Close();
      Notice("connection lost (" + last.ToString() + "); retrying");
      RotateEndpoint("connection lost");
      continue;
    }
    switch (reply->type) {
      case MsgType::kResult:
        return reply->payload;
      case MsgType::kError:
        // Remote verdict: deterministic, retrying would just repeat it.
        return Status::RuntimeError(reply->payload);
      case MsgType::kUnavailable:
        // Overload, a crashed-but-replicated node, or a read-only
        // replica redirect — all retryable, all better served by the
        // next endpoint when there is one.
        last = Status::Unavailable(reply->payload);
        hint_ms = ParseRetryAfterHint(reply->payload);
        Notice("server unavailable; backing off");
        RotateEndpoint("unavailable");
        continue;
      default:
        return Status::InvalidArgument("unexpected reply frame type");
    }
  }
  if (RetryableTransport(last)) {
    return Status::ResourceExhausted(
        "gave up after " + std::to_string(options_.max_retries + 1) +
        " attempts; last error: " + last.ToString());
  }
  return last;
}

}  // namespace server
}  // namespace xsql
