#include "server/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include "server/wire.h"

namespace xsql {
namespace server {

Result<Client> Client::Connect(const std::string& host, int port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::RuntimeError(std::string("socket: ") + strerror(errno));
  }
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad IPv4 address '" + host + "'");
  }
  if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
              sizeof(addr)) < 0) {
    Status st =
        Status::RuntimeError(std::string("connect: ") + strerror(errno));
    close(fd);
    return st;
  }
  return Client(fd);
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<std::string> Client::RoundTrip(uint8_t type,
                                      const std::string& payload) {
  if (fd_ < 0) return Status::RuntimeError("client not connected");
  XSQL_RETURN_IF_ERROR(
      WriteAll(fd_, EncodeFrame(static_cast<MsgType>(type), payload)));
  XSQL_ASSIGN_OR_RETURN(Frame reply, ReadFrame(fd_, nullptr));
  if (reply.type == MsgType::kError) {
    // The payload is the remote Status rendered "CodeName: message".
    return Status::RuntimeError(reply.payload);
  }
  if (reply.type != MsgType::kResult) {
    return Status::InvalidArgument("unexpected reply frame type");
  }
  return reply.payload;
}

Result<std::string> Client::Execute(const std::string& statement) {
  return RoundTrip(static_cast<uint8_t>(MsgType::kExecute), statement);
}

Result<std::string> Client::Ping() {
  return RoundTrip(static_cast<uint8_t>(MsgType::kPing), "");
}

Status Client::Quit() {
  Result<std::string> bye =
      RoundTrip(static_cast<uint8_t>(MsgType::kQuit), "");
  Close();
  return bye.ok() ? Status::OK() : bye.status();
}

void Client::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

}  // namespace server
}  // namespace xsql
