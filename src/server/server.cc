#include "server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <optional>
#include <utility>

#include "eval/evaluator.h"
#include "obs/metrics.h"
#include "server/wire.h"
#include "storage/dedup.h"

namespace xsql {
namespace server {

namespace {

constexpr int kAcceptSliceMs = 100;
constexpr int kListenBacklog = 64;

/// A kUnavailable frame: "<retry_after_ms> <reason>" (see wire.h).
std::string UnavailablePayload(int retry_after_ms,
                               const std::string& reason) {
  return std::to_string(retry_after_ms) + " " + reason;
}

}  // namespace

std::string RenderResult(const EvalOutput& out) {
  // The canonical renderer lives in eval (recovery re-renders replies
  // for the dedup table); this name survives for the server's callers.
  return RenderEvalOutput(out);
}

Result<std::unique_ptr<Server>> Server::Start(storage::DurableDatabase* dd,
                                              ServerOptions options) {
  std::unique_ptr<Server> server(new Server(dd, std::move(options)));

  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::RuntimeError(std::string("socket: ") + strerror(errno));
  }
  int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(server->options_.port));
  if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status st =
        Status::RuntimeError(std::string("bind: ") + strerror(errno));
    close(fd);
    return st;
  }
  if (listen(fd, kListenBacklog) < 0) {
    Status st =
        Status::RuntimeError(std::string("listen: ") + strerror(errno));
    close(fd);
    return st;
  }
  socklen_t addr_len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  &addr_len) < 0) {
    Status st =
        Status::RuntimeError(std::string("getsockname: ") + strerror(errno));
    close(fd);
    return st;
  }
  server->listen_fd_ = fd;
  server->port_ = ntohs(addr.sin_port);
  server->SetRole(server->options_.role);
  server->accept_thread_ = std::thread([s = server.get()] {
    s->AcceptLoop();
  });
  return server;
}

void Server::SetRole(ServerRole role) {
  role_.store(role, std::memory_order_release);
  status_.Set("role", role == ServerRole::kPrimary ? "primary" : "replica");
}

Server::~Server() { Shutdown(); }

void Server::Shutdown() {
  // One caller at a time; a second call (or the destructor after an
  // explicit Shutdown) finds nothing left to join and returns.
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  stop_.store(true, std::memory_order_relaxed);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::thread> drained;
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    drained.swap(conn_threads_);
  }
  for (std::thread& t : drained) {
    if (t.joinable()) t.join();
  }
}

void Server::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    struct pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int ready = poll(&pfd, 1, kAcceptSliceMs);
    if (ready <= 0) continue;  // slice, EINTR, or spurious: re-check stop
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (active_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      static obs::Counter& shed_conns =
          obs::MetricsRegistry::Global().GetCounter(
              "xsql.server.shed_connections");
      shed_conns.Inc();
      IoOptions io;
      io.io_timeout_ms = 1000;  // a stalled stranger won't park accept
      io.site = "srv";
      (void)WriteAll(fd,
                     EncodeFrame(MsgType::kUnavailable,
                                 UnavailablePayload(
                                     options_.retry_after_hint_ms,
                                     "server at connection capacity")),
                     io);
      close(fd);
      continue;
    }
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    connections_served_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(threads_mu_);
    conn_threads_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

void Server::HandleConnection(int fd) {
  static obs::Counter& served = obs::MetricsRegistry::Global().GetCounter(
      "xsql.server.statements_served");
  static obs::Counter& write_failures =
      obs::MetricsRegistry::Global().GetCounter(
          "xsql.server.write_failures");
  static obs::Counter& idle_reaped =
      obs::MetricsRegistry::Global().GetCounter(
          "xsql.server.idle_reaped");
  static obs::Counter& shed_statements =
      obs::MetricsRegistry::Global().GetCounter(
          "xsql.server.shed_statements");
  static obs::Gauge& inflight_gauge =
      obs::MetricsRegistry::Global().GetGauge(
          "xsql.server.inflight_statements");

  IoOptions io;
  io.stop = &stop_;
  io.idle_timeout_ms = options_.idle_timeout_ms;
  io.io_timeout_ms = options_.io_timeout_ms;
  io.site = "srv";

  // Every reply goes through here: a failed or short write poisons the
  // connection (the peer would misparse everything after the gap), so
  // it is counted, the socket is closed, and the thread exits — it
  // must never crash (SIGPIPE) or wedge (unbounded blocking write).
  auto reply_or_close = [&](const std::string& frame) -> bool {
    Status st = WriteAll(fd, frame, io);
    if (st.ok()) return true;
    write_failures.Inc();
    return false;
  };

  SessionOptions session_options = options_.session;
  // A fresh token per connection: cancelling one statement (or losing
  // one peer) never aborts a neighbor.
  session_options.cancel = std::make_shared<CancelToken>();
  // SYSTEM STATUS on this connection reads THIS server's board.
  session_options.status = &status_;
  Result<uint64_t> sid = cm_.CreateSession(std::move(session_options));
  if (!sid.ok()) {
    (void)reply_or_close(
        EncodeFrame(MsgType::kError, sid.status().ToString()));
    close(fd);
    active_connections_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }

  // Failure → reply frame. A wedged node with a known replica (one
  // ever subscribed, or this IS the replica) answers retryable
  // kUnavailable instead of a final error: the client's next stop is
  // the promoted survivor, not the operator.
  auto encode_failure = [&](const Status& st) -> std::string {
    if (st.code() == StatusCode::kUnavailable) {
      return EncodeFrame(MsgType::kUnavailable,
                         UnavailablePayload(options_.retry_after_hint_ms,
                                            st.message()));
    }
    if (cm_.durable().wedged() &&
        (hub_.ever_had_subscriber() || role() == ServerRole::kReplica)) {
      return EncodeFrame(
          MsgType::kUnavailable,
          UnavailablePayload(options_.retry_after_hint_ms,
                             "node crashed; fail over to its replica"));
    }
    return EncodeFrame(MsgType::kError, st.ToString());
  };

  // The replica write fence: a statement that would take the exclusive
  // latch is bounced with a redirect hint before touching anything.
  // Returns true (with `*reply` filled) when the statement must NOT
  // run here.
  auto refuse_replica_write = [&](const std::string& text,
                                  std::string* reply) -> bool {
    if (role() != ServerRole::kReplica) return false;
    Result<bool> needs = cm_.StatementNeedsExclusive(text);
    if (!needs.ok()) {
      *reply = encode_failure(needs.status());
      return true;
    }
    if (!*needs) return false;
    static obs::Counter& refused =
        obs::MetricsRegistry::Global().GetCounter(
            "xsql.repl.refused_writes");
    refused.Inc();
    const std::string target = options_.redirect_hint.empty()
                                   ? "the primary"
                                   : "the primary at " +
                                         options_.redirect_hint;
    *reply = EncodeFrame(
        MsgType::kUnavailable,
        UnavailablePayload(options_.retry_after_hint_ms,
                           "read-only replica; retry against " + target));
    return true;
  };

  // Admission check for one execute frame; on shed, sends kUnavailable
  // with the retry-after hint. Returns whether the statement may run
  // (true = the inflight slot is held and must be released).
  auto admit = [&]() -> bool {
    const int cap = options_.max_inflight_statements;
    const int now =
        inflight_statements_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (cap <= 0 || now <= cap) {
      // Gauge only after admission: a shed attempt must not leave the
      // reading above the true in-flight count (or the cap).
      inflight_gauge.Set(now);
      return true;
    }
    inflight_gauge.Set(
        inflight_statements_.fetch_sub(1, std::memory_order_relaxed) - 1);
    shed_statements.Inc();
    return false;
  };
  auto release = [&]() {
    inflight_gauge.Set(
        inflight_statements_.fetch_sub(1, std::memory_order_relaxed) - 1);
  };

  while (!stop_.load(std::memory_order_relaxed)) {
    Result<Frame> frame = ReadFrame(fd, io);
    if (!frame.ok()) {
      if (frame.status().code() == StatusCode::kResourceExhausted &&
          frame.status().message().find("idle timeout") !=
              std::string::npos) {
        idle_reaped.Inc();
      }
      break;  // stop, EOF, timeout, or a hopeless peer
    }
    bool done = false;
    switch (frame->type) {
      case MsgType::kExecute: {
        std::string refusal;
        if (refuse_replica_write(frame->payload, &refusal)) {
          done = !reply_or_close(refusal);
          break;
        }
        if (!admit()) {
          done = !reply_or_close(EncodeFrame(
              MsgType::kUnavailable,
              UnavailablePayload(options_.retry_after_hint_ms,
                                 "server overloaded: too many "
                                 "statements in flight")));
          break;
        }
        Result<EvalOutput> out = cm_.Execute(*sid, frame->payload);
        release();
        served.Inc();
        std::string reply;
        if (out.ok()) {
          reply = EncodeFrame(MsgType::kResult, RenderResult(*out));
        } else {
          reply = encode_failure(out.status());
        }
        if (!reply_or_close(reply)) done = true;
        break;
      }
      case MsgType::kExecuteId: {
        // Payload: [16B uuid][u64 seq LE][statement text].
        std::optional<storage::RequestId> rid =
            storage::RequestId::Decode(frame->payload, 0);
        if (!rid.has_value()) {
          done = !reply_or_close(
              EncodeFrame(MsgType::kError,
                          "InvalidArgument: malformed request id"));
          break;
        }
        std::string refusal;
        if (refuse_replica_write(frame->payload.substr(24), &refusal)) {
          done = !reply_or_close(refusal);
          break;
        }
        if (!admit()) {
          done = !reply_or_close(EncodeFrame(
              MsgType::kUnavailable,
              UnavailablePayload(options_.retry_after_hint_ms,
                                 "server overloaded: too many "
                                 "statements in flight")));
          break;
        }
        Result<std::string> out = cm_.ExecuteIdempotent(
            *sid, *rid, frame->payload.substr(24));
        release();
        served.Inc();
        std::string reply;
        if (out.ok()) {
          reply = EncodeFrame(MsgType::kResult, *out);
        } else {
          reply = encode_failure(out.status());
        }
        if (!reply_or_close(reply)) done = true;
        break;
      }
      case MsgType::kSubscribe:
        // The connection becomes a replication stream; this thread
        // parks in the source until the subscriber detaches. Closing
        // afterwards is correct either way — the stream is the
        // connection's whole remaining life.
        if (role() != ServerRole::kPrimary) {
          (void)reply_or_close(
              EncodeFrame(MsgType::kError,
                          "InvalidArgument: replication subscribe to a "
                          "non-primary node"));
        } else {
          repl_.Serve(fd, io, frame->payload, &stop_);
        }
        done = true;
        break;
      case MsgType::kPromote: {
        if (!options_.on_promote) {
          done = !reply_or_close(
              EncodeFrame(MsgType::kError,
                          "InvalidArgument: this node is not a "
                          "promotable replica"));
          break;
        }
        std::string msg;
        Status st = options_.on_promote(&msg);
        done = !reply_or_close(
            st.ok() ? EncodeFrame(MsgType::kResult, msg)
                    : EncodeFrame(MsgType::kError, st.ToString()));
        break;
      }
      case MsgType::kPing:
        if (!reply_or_close(EncodeFrame(MsgType::kResult, "pong"))) {
          done = true;
        }
        break;
      case MsgType::kQuit:
        (void)reply_or_close(EncodeFrame(MsgType::kResult, "bye"));
        done = true;
        break;
      default:
        (void)reply_or_close(EncodeFrame(MsgType::kError,
                                         "InvalidArgument: unknown "
                                         "message type"));
        done = true;
        break;
    }
    if (done) break;
  }
  cm_.CloseSession(*sid);
  close(fd);
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace server
}  // namespace xsql
