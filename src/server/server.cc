#include "server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <optional>
#include <utility>

#include "eval/evaluator.h"
#include "obs/metrics.h"
#include "server/wire.h"
#include "storage/dedup.h"

namespace xsql {
namespace server {

namespace {

constexpr int kAcceptSliceMs = 100;
constexpr int kListenBacklog = 64;

/// A kUnavailable frame: "<retry_after_ms> <reason>" (see wire.h).
std::string UnavailablePayload(int retry_after_ms,
                               const std::string& reason) {
  return std::to_string(retry_after_ms) + " " + reason;
}

}  // namespace

std::string RenderResult(const EvalOutput& out) {
  // The canonical renderer lives in eval (recovery re-renders replies
  // for the dedup table); this name survives for the server's callers.
  return RenderEvalOutput(out);
}

Result<std::unique_ptr<Server>> Server::Start(storage::DurableDatabase* dd,
                                              ServerOptions options) {
  std::unique_ptr<Server> server(new Server(dd, std::move(options)));

  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::RuntimeError(std::string("socket: ") + strerror(errno));
  }
  int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(server->options_.port));
  if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status st =
        Status::RuntimeError(std::string("bind: ") + strerror(errno));
    close(fd);
    return st;
  }
  if (listen(fd, kListenBacklog) < 0) {
    Status st =
        Status::RuntimeError(std::string("listen: ") + strerror(errno));
    close(fd);
    return st;
  }
  socklen_t addr_len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  &addr_len) < 0) {
    Status st =
        Status::RuntimeError(std::string("getsockname: ") + strerror(errno));
    close(fd);
    return st;
  }
  server->listen_fd_ = fd;
  server->port_ = ntohs(addr.sin_port);
  server->accept_thread_ = std::thread([s = server.get()] {
    s->AcceptLoop();
  });
  return server;
}

Server::~Server() { Shutdown(); }

void Server::Shutdown() {
  // One caller at a time; a second call (or the destructor after an
  // explicit Shutdown) finds nothing left to join and returns.
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  stop_.store(true, std::memory_order_relaxed);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::thread> drained;
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    drained.swap(conn_threads_);
  }
  for (std::thread& t : drained) {
    if (t.joinable()) t.join();
  }
}

void Server::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    struct pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int ready = poll(&pfd, 1, kAcceptSliceMs);
    if (ready <= 0) continue;  // slice, EINTR, or spurious: re-check stop
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (active_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      static obs::Counter& shed_conns =
          obs::MetricsRegistry::Global().GetCounter(
              "xsql.server.shed_connections");
      shed_conns.Inc();
      IoOptions io;
      io.io_timeout_ms = 1000;  // a stalled stranger won't park accept
      io.site = "srv";
      (void)WriteAll(fd,
                     EncodeFrame(MsgType::kUnavailable,
                                 UnavailablePayload(
                                     options_.retry_after_hint_ms,
                                     "server at connection capacity")),
                     io);
      close(fd);
      continue;
    }
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    connections_served_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(threads_mu_);
    conn_threads_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

void Server::HandleConnection(int fd) {
  static obs::Counter& served = obs::MetricsRegistry::Global().GetCounter(
      "xsql.server.statements_served");
  static obs::Counter& write_failures =
      obs::MetricsRegistry::Global().GetCounter(
          "xsql.server.write_failures");
  static obs::Counter& idle_reaped =
      obs::MetricsRegistry::Global().GetCounter(
          "xsql.server.idle_reaped");
  static obs::Counter& shed_statements =
      obs::MetricsRegistry::Global().GetCounter(
          "xsql.server.shed_statements");
  static obs::Gauge& inflight_gauge =
      obs::MetricsRegistry::Global().GetGauge(
          "xsql.server.inflight_statements");

  IoOptions io;
  io.stop = &stop_;
  io.idle_timeout_ms = options_.idle_timeout_ms;
  io.io_timeout_ms = options_.io_timeout_ms;
  io.site = "srv";

  // Every reply goes through here: a failed or short write poisons the
  // connection (the peer would misparse everything after the gap), so
  // it is counted, the socket is closed, and the thread exits — it
  // must never crash (SIGPIPE) or wedge (unbounded blocking write).
  auto reply_or_close = [&](const std::string& frame) -> bool {
    Status st = WriteAll(fd, frame, io);
    if (st.ok()) return true;
    write_failures.Inc();
    return false;
  };

  SessionOptions session_options = options_.session;
  // A fresh token per connection: cancelling one statement (or losing
  // one peer) never aborts a neighbor.
  session_options.cancel = std::make_shared<CancelToken>();
  Result<uint64_t> sid = cm_.CreateSession(std::move(session_options));
  if (!sid.ok()) {
    (void)reply_or_close(
        EncodeFrame(MsgType::kError, sid.status().ToString()));
    close(fd);
    active_connections_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }

  // Admission check for one execute frame; on shed, sends kUnavailable
  // with the retry-after hint. Returns whether the statement may run
  // (true = the inflight slot is held and must be released).
  auto admit = [&]() -> bool {
    const int cap = options_.max_inflight_statements;
    const int now =
        inflight_statements_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (cap <= 0 || now <= cap) {
      // Gauge only after admission: a shed attempt must not leave the
      // reading above the true in-flight count (or the cap).
      inflight_gauge.Set(now);
      return true;
    }
    inflight_gauge.Set(
        inflight_statements_.fetch_sub(1, std::memory_order_relaxed) - 1);
    shed_statements.Inc();
    return false;
  };
  auto release = [&]() {
    inflight_gauge.Set(
        inflight_statements_.fetch_sub(1, std::memory_order_relaxed) - 1);
  };

  while (!stop_.load(std::memory_order_relaxed)) {
    Result<Frame> frame = ReadFrame(fd, io);
    if (!frame.ok()) {
      if (frame.status().code() == StatusCode::kResourceExhausted &&
          frame.status().message().find("idle timeout") !=
              std::string::npos) {
        idle_reaped.Inc();
      }
      break;  // stop, EOF, timeout, or a hopeless peer
    }
    bool done = false;
    switch (frame->type) {
      case MsgType::kExecute: {
        if (!admit()) {
          done = !reply_or_close(EncodeFrame(
              MsgType::kUnavailable,
              UnavailablePayload(options_.retry_after_hint_ms,
                                 "server overloaded: too many "
                                 "statements in flight")));
          break;
        }
        Result<EvalOutput> out = cm_.Execute(*sid, frame->payload);
        release();
        served.Inc();
        std::string reply;
        if (out.ok()) {
          reply = EncodeFrame(MsgType::kResult, RenderResult(*out));
        } else if (out.status().code() == StatusCode::kUnavailable) {
          reply = EncodeFrame(
              MsgType::kUnavailable,
              UnavailablePayload(options_.retry_after_hint_ms,
                                 out.status().message()));
        } else {
          reply = EncodeFrame(MsgType::kError, out.status().ToString());
        }
        if (!reply_or_close(reply)) done = true;
        break;
      }
      case MsgType::kExecuteId: {
        // Payload: [16B uuid][u64 seq LE][statement text].
        std::optional<storage::RequestId> rid =
            storage::RequestId::Decode(frame->payload, 0);
        if (!rid.has_value()) {
          done = !reply_or_close(
              EncodeFrame(MsgType::kError,
                          "InvalidArgument: malformed request id"));
          break;
        }
        if (!admit()) {
          done = !reply_or_close(EncodeFrame(
              MsgType::kUnavailable,
              UnavailablePayload(options_.retry_after_hint_ms,
                                 "server overloaded: too many "
                                 "statements in flight")));
          break;
        }
        Result<std::string> out = cm_.ExecuteIdempotent(
            *sid, *rid, frame->payload.substr(24));
        release();
        served.Inc();
        std::string reply;
        if (out.ok()) {
          reply = EncodeFrame(MsgType::kResult, *out);
        } else if (out.status().code() == StatusCode::kUnavailable) {
          reply = EncodeFrame(
              MsgType::kUnavailable,
              UnavailablePayload(options_.retry_after_hint_ms,
                                 out.status().message()));
        } else {
          reply = EncodeFrame(MsgType::kError, out.status().ToString());
        }
        if (!reply_or_close(reply)) done = true;
        break;
      }
      case MsgType::kPing:
        if (!reply_or_close(EncodeFrame(MsgType::kResult, "pong"))) {
          done = true;
        }
        break;
      case MsgType::kQuit:
        (void)reply_or_close(EncodeFrame(MsgType::kResult, "bye"));
        done = true;
        break;
      default:
        (void)reply_or_close(EncodeFrame(MsgType::kError,
                                         "InvalidArgument: unknown "
                                         "message type"));
        done = true;
        break;
    }
    if (done) break;
  }
  cm_.CloseSession(*sid);
  close(fd);
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace server
}  // namespace xsql
