#include "server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "obs/metrics.h"
#include "server/wire.h"

namespace xsql {
namespace server {

namespace {

constexpr int kAcceptSliceMs = 100;
constexpr int kListenBacklog = 64;

}  // namespace

std::string RenderResult(const EvalOutput& out) {
  std::string text;
  if (out.objects_created) {
    text += "(" + std::to_string(out.created.size()) + " objects created)\n";
  }
  const Relation& rel = out.relation;
  if (rel.columns().empty()) return text;
  for (size_t i = 0; i < rel.columns().size(); ++i) {
    if (i > 0) text += " | ";
    text += rel.columns()[i];
  }
  text += "\n";
  for (const auto& row : rel.rows()) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) text += " | ";
      text += row[i].ToString();
    }
    text += "\n";
  }
  text += "(" + std::to_string(rel.size()) + " rows)\n";
  return text;
}

Result<std::unique_ptr<Server>> Server::Start(storage::DurableDatabase* dd,
                                              ServerOptions options) {
  std::unique_ptr<Server> server(new Server(dd, std::move(options)));

  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::RuntimeError(std::string("socket: ") + strerror(errno));
  }
  int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(server->options_.port));
  if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status st =
        Status::RuntimeError(std::string("bind: ") + strerror(errno));
    close(fd);
    return st;
  }
  if (listen(fd, kListenBacklog) < 0) {
    Status st =
        Status::RuntimeError(std::string("listen: ") + strerror(errno));
    close(fd);
    return st;
  }
  socklen_t addr_len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  &addr_len) < 0) {
    Status st =
        Status::RuntimeError(std::string("getsockname: ") + strerror(errno));
    close(fd);
    return st;
  }
  server->listen_fd_ = fd;
  server->port_ = ntohs(addr.sin_port);
  server->accept_thread_ = std::thread([s = server.get()] {
    s->AcceptLoop();
  });
  return server;
}

Server::~Server() { Shutdown(); }

void Server::Shutdown() {
  // One caller at a time; a second call (or the destructor after an
  // explicit Shutdown) finds nothing left to join and returns.
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  stop_.store(true, std::memory_order_relaxed);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::thread> drained;
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    drained.swap(conn_threads_);
  }
  for (std::thread& t : drained) {
    if (t.joinable()) t.join();
  }
}

void Server::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    struct pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int ready = poll(&pfd, 1, kAcceptSliceMs);
    if (ready <= 0) continue;  // slice, EINTR, or spurious: re-check stop
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (active_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      (void)WriteAll(fd, EncodeFrame(MsgType::kError,
                                     "RuntimeError: server at connection "
                                     "capacity"));
      close(fd);
      continue;
    }
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    connections_served_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(threads_mu_);
    conn_threads_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

void Server::HandleConnection(int fd) {
  static obs::Counter& served = obs::MetricsRegistry::Global().GetCounter(
      "xsql.server.statements_served");
  SessionOptions session_options = options_.session;
  // A fresh token per connection: cancelling one statement (or losing
  // one peer) never aborts a neighbor.
  session_options.cancel = std::make_shared<CancelToken>();
  Result<uint64_t> sid = cm_.CreateSession(std::move(session_options));
  if (!sid.ok()) {
    (void)WriteAll(
        fd, EncodeFrame(MsgType::kError, sid.status().ToString()));
    close(fd);
    active_connections_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  while (!stop_.load(std::memory_order_relaxed)) {
    Result<Frame> frame = ReadFrame(fd, &stop_);
    if (!frame.ok()) break;  // stop, EOF, or a hopeless peer
    bool done = false;
    switch (frame->type) {
      case MsgType::kExecute: {
        Result<EvalOutput> out = cm_.Execute(*sid, frame->payload);
        served.Inc();
        std::string reply =
            out.ok() ? EncodeFrame(MsgType::kResult, RenderResult(*out))
                     : EncodeFrame(MsgType::kError,
                                   out.status().ToString());
        if (!WriteAll(fd, reply).ok()) done = true;
        break;
      }
      case MsgType::kPing:
        if (!WriteAll(fd, EncodeFrame(MsgType::kResult, "pong")).ok()) {
          done = true;
        }
        break;
      case MsgType::kQuit:
        (void)WriteAll(fd, EncodeFrame(MsgType::kResult, "bye"));
        done = true;
        break;
      default:
        (void)WriteAll(fd, EncodeFrame(MsgType::kError,
                                       "InvalidArgument: unknown message "
                                       "type"));
        done = true;
        break;
    }
    if (done) break;
  }
  cm_.CloseSession(*sid);
  close(fd);
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace server
}  // namespace xsql
