#ifndef XSQL_COMMON_STR_UTIL_H_
#define XSQL_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace xsql {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Case-insensitive ASCII equality, used for SQL keywords.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Lower-cases ASCII letters.
std::string AsciiToLower(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace xsql

#endif  // XSQL_COMMON_STR_UTIL_H_
