#ifndef XSQL_COMMON_RNG_H_
#define XSQL_COMMON_RNG_H_

#include <cstdint>

namespace xsql {

/// Deterministic, seedable PRNG (SplitMix64) used by the workload
/// generator and property tests so every run is reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Range(int64_t lo, int64_t hi);

  /// Bernoulli draw with probability `percent`/100.
  bool Percent(uint32_t percent);

 private:
  uint64_t state_;
};

}  // namespace xsql

#endif  // XSQL_COMMON_RNG_H_
