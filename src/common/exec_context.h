#ifndef XSQL_COMMON_EXEC_CONTEXT_H_
#define XSQL_COMMON_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"

namespace xsql {

/// Cooperative cancellation flag, shareable across threads. The thread
/// that owns the query hands the token to whoever may cancel it; the
/// evaluator polls it at every guard check.
class CancelToken {
 public:
  void RequestCancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  void Reset() { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// The single knob surface for execution limits. A value of 0 means
/// "unlimited" for the budget knobs; the two depth knobs always apply
/// (they are semantic policies, not failure budgets — see below).
struct ExecLimits {
  /// Wall-clock deadline per statement, in milliseconds (0 = none).
  uint64_t deadline_ms = 0;
  /// Maximum result rows / bindings a statement may emit (0 = none).
  uint64_t max_rows = 0;
  /// Maximum evaluation steps — path walks, extent-candidate probes,
  /// method invocations — per statement (0 = none).
  uint64_t max_steps = 0;
  /// The one recursion-depth policy: query-method recursion, view
  /// expansion, and F-logic support derivation all count against it.
  /// Exceeding it is an error (kResourceExhausted).
  uint64_t max_recursion_depth = 64;
  /// Maximum attribute-sequence length a path variable `*Y` matches.
  /// This bounds the *language semantics* of path variables, so hitting
  /// it truncates enumeration silently rather than failing.
  uint64_t max_path_var_len = 3;
};

/// Execution guardrails threaded through the whole evaluation stack
/// (Evaluator, PathEvaluator, FLogic model checker, view expansion,
/// introspection). One context is armed per statement; every guard that
/// trips reports *which* guard fired in its message, with the machine-
/// checkable marker `(guard: <name>)`, and a dedicated StatusCode
/// (kResourceExhausted / kCancelled) so callers can tell resource
/// failures from genuine query errors.
///
/// Cost model: `Step()` is the hot call — an increment, a budget
/// compare, and a relaxed atomic load for the cancel token; the clock
/// is read only every 16 steps. Code that has no caller-supplied
/// context uses `Unlimited()` (per-thread, no budgets, default depth
/// policy) so call sites never branch on null.
class ExecutionContext {
 public:
  /// No budgets, default depth policy.
  ExecutionContext() : ExecutionContext(ExecLimits{}, nullptr) {}

  /// Arms `limits`; the deadline countdown starts now.
  explicit ExecutionContext(const ExecLimits& limits,
                            std::shared_ptr<CancelToken> cancel = nullptr);

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  /// Charges one evaluation step: enforces the step budget and polls
  /// cancellation every step and the deadline every 16 steps (the first
  /// step included, so an expired deadline fires immediately).
  Status Step();

  /// Charges one emitted row/binding against the row budget.
  Status ChargeRow();

  /// Enters one level of guarded recursion (`what` names the activity
  /// for the error message, e.g. "query method Loop"). Balance with
  /// LeaveRecursion, or use RecursionScope.
  Status EnterRecursion(const std::string& what);
  void LeaveRecursion();

  const ExecLimits& limits() const { return limits_; }
  uint64_t steps() const { return steps_; }
  uint64_t rows() const { return rows_; }
  uint64_t recursion_depth() const { return depth_; }

  /// The per-thread "no limits" context — the default for evaluators
  /// constructed without an explicit context (tests, internal referees).
  static ExecutionContext* Unlimited();

 private:
  Status CheckDeadlineAndCancel();

  ExecLimits limits_;
  std::shared_ptr<CancelToken> cancel_;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  uint64_t steps_ = 0;
  uint64_t rows_ = 0;
  uint64_t depth_ = 0;
};

/// RAII recursion guard: checks the depth policy on construction and
/// releases the level on destruction iff entry succeeded.
class RecursionScope {
 public:
  RecursionScope(ExecutionContext* ctx, const std::string& what)
      : ctx_(ctx), status_(ctx->EnterRecursion(what)) {}
  ~RecursionScope() {
    if (status_.ok()) ctx_->LeaveRecursion();
  }
  RecursionScope(const RecursionScope&) = delete;
  RecursionScope& operator=(const RecursionScope&) = delete;

  const Status& status() const { return status_; }

 private:
  ExecutionContext* ctx_;
  Status status_;
};

}  // namespace xsql

#endif  // XSQL_COMMON_EXEC_CONTEXT_H_
