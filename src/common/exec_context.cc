#include "common/exec_context.h"

#include "common/fault.h"
#include "obs/metrics.h"

namespace xsql {

namespace {

/// Counts every tripped guard (budget, deadline, cancellation,
/// recursion): the fleet-level "how often do we hit the rails" signal.
void NoteGuardTrip() {
  static obs::Counter& trips =
      obs::MetricsRegistry::Global().GetCounter("xsql.guard.trips");
  trips.Inc();
}

}  // namespace

ExecutionContext::ExecutionContext(const ExecLimits& limits,
                                   std::shared_ptr<CancelToken> cancel)
    : limits_(limits), cancel_(std::move(cancel)) {
  if (limits_.deadline_ms > 0) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(limits_.deadline_ms);
    has_deadline_ = true;
  }
}

Status ExecutionContext::CheckDeadlineAndCancel() {
  if (cancel_ && cancel_->cancelled()) {
    NoteGuardTrip();
    return Status::Cancelled("execution cancelled (guard: cancellation)");
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    NoteGuardTrip();
    return Status::ResourceExhausted(
        "deadline of " + std::to_string(limits_.deadline_ms) +
        " ms exceeded (guard: deadline)");
  }
  return Status::OK();
}

Status ExecutionContext::Step() {
  FaultInjector& fi = FaultInjector::Global();
  if (fi.armed()) {
    XSQL_RETURN_IF_ERROR(fi.Check(FaultInjector::Domain::kGuard, "step"));
  }
  ++steps_;
  if (limits_.max_steps != 0 && steps_ > limits_.max_steps) {
    NoteGuardTrip();
    return Status::ResourceExhausted(
        "step budget of " + std::to_string(limits_.max_steps) +
        " exhausted (guard: step-budget)");
  }
  // Cancellation is a relaxed atomic load — poll it every step. The
  // clock read is costlier, so poll the deadline every 16 steps; the
  // offset makes the very first step poll it too, so an already-expired
  // deadline (deadline_ms tiny) trips deterministically.
  if (cancel_ && cancel_->cancelled()) {
    NoteGuardTrip();
    return Status::Cancelled("execution cancelled (guard: cancellation)");
  }
  if (has_deadline_ && (steps_ & 15) == 1) {
    if (std::chrono::steady_clock::now() >= deadline_) {
      NoteGuardTrip();
      return Status::ResourceExhausted(
          "deadline of " + std::to_string(limits_.deadline_ms) +
          " ms exceeded (guard: deadline)");
    }
  }
  return Status::OK();
}

Status ExecutionContext::ChargeRow() {
  FaultInjector& fi = FaultInjector::Global();
  if (fi.armed()) {
    XSQL_RETURN_IF_ERROR(fi.Check(FaultInjector::Domain::kGuard, "row"));
  }
  ++rows_;
  if (limits_.max_rows != 0 && rows_ > limits_.max_rows) {
    NoteGuardTrip();
    return Status::ResourceExhausted(
        "row budget of " + std::to_string(limits_.max_rows) +
        " exhausted (guard: row-budget)");
  }
  return CheckDeadlineAndCancel();
}

Status ExecutionContext::EnterRecursion(const std::string& what) {
  FaultInjector& fi = FaultInjector::Global();
  if (fi.armed()) {
    XSQL_RETURN_IF_ERROR(
        fi.Check(FaultInjector::Domain::kGuard, "recursion"));
  }
  if (depth_ >= limits_.max_recursion_depth) {
    NoteGuardTrip();
    return Status::ResourceExhausted(
        "recursion depth limit of " +
        std::to_string(limits_.max_recursion_depth) + " reached in " + what +
        " (guard: recursion-depth)");
  }
  ++depth_;
  return Status::OK();
}

void ExecutionContext::LeaveRecursion() {
  if (depth_ > 0) --depth_;
}

ExecutionContext* ExecutionContext::Unlimited() {
  // Per-thread so concurrent evaluators sharing the fallback never race
  // on the recursion-depth counter.
  thread_local ExecutionContext ctx;
  return &ctx;
}

}  // namespace xsql
