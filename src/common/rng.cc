#include "common/rng.h"

namespace xsql {

uint64_t Rng::Next() {
  // SplitMix64 (Steele, Lea, Flood 2014): tiny, fast, good diffusion.
  state_ += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rng::Uniform(uint64_t bound) { return bound == 0 ? 0 : Next() % bound; }

int64_t Rng::Range(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
}

bool Rng::Percent(uint32_t percent) { return Uniform(100) < percent; }

}  // namespace xsql
