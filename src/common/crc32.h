#ifndef XSQL_COMMON_CRC32_H_
#define XSQL_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace xsql {

/// CRC-32 (IEEE 802.3, the zlib polynomial 0xEDB88320), table-driven.
/// Used by the write-ahead log to detect torn or corrupted records.
uint32_t Crc32(const void* data, size_t len);

inline uint32_t Crc32(const std::string& data) {
  return Crc32(data.data(), data.size());
}

}  // namespace xsql

#endif  // XSQL_COMMON_CRC32_H_
