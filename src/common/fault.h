#ifndef XSQL_COMMON_FAULT_H_
#define XSQL_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/status.h"

namespace xsql {

/// Deterministic fault injection for robustness testing.
///
/// Instrumented code calls `Check(domain, site)` at every point where a
/// failure could realistically occur. In production the injector is
/// disarmed and a check is a single relaxed atomic load. Tests arm it
/// in one of two modes:
///  * `ArmNth(domain, n)` — the n-th check (1-based) in that domain
///    fails; sweeping n over 1,2,3,... visits *every* injection point of
///    a scenario in turn, which is how the atomicity property test
///    proves statement rollback at each mutation point;
///  * `ArmRandom(domain, seed, permille)` — each check fails with the
///    given per-mille probability from a seeded deterministic stream.
///
/// Three domains exist so a test can target one layer without also
/// tripping the others:
///  * `kMutation` — every `Database` mutator entry plus selected
///    mid-operation points (partial-state hazards);
///  * `kGuard` — every `ExecutionContext` budget/deadline check;
///  * `kIo` — every durable-I/O operation in `storage::File` (open,
///    sync, rename); an injected failure there models a short write or
///    a failed fsync that the process survives.
///
/// Orthogonal to the per-check schedules, `ArmCrashAtByte(k)` simulates
/// a *process kill* at an exact point in the durable-I/O byte stream:
/// the next `k` persistence units (one unit per byte fsynced, one per
/// metadata operation such as rename) succeed, the unit after that is
/// cut short, and from then on every `storage::File` operation fails
/// with "simulated crash" — nothing further reaches disk, exactly as if
/// the process had died. Sweeping k over 1,2,3,... drives a crash
/// through every byte boundary of a durable operation; tests then
/// reopen the on-disk state to prove recovery.
///
/// The injector is a process-wide singleton (tests own the process);
/// state is mutex-guarded once armed.
class FaultInjector {
 public:
  enum class Domain { kMutation = 0, kGuard = 1, kIo = 2 };

  static FaultInjector& Global();

  /// Arms the injector: the `n`-th Check in `domain` (1-based) fails.
  void ArmNth(Domain domain, uint64_t n);

  /// Arms seeded probabilistic failure: each Check in `domain` fails
  /// with probability `permille`/1000.
  void ArmRandom(Domain domain, uint64_t seed, uint32_t permille);

  /// Arms the simulated process kill: after `k` further persistence
  /// units (bytes fsynced / metadata ops) the crash fires. Coexists
  /// with the per-check schedules; `Disarm` clears both.
  void ArmCrashAtByte(uint64_t k);

  /// Disarms and resets counters/fired state.
  void Disarm();

  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Whether an injected fault has fired since the last Arm*.
  bool fired() const;

  /// Injection site of the last fired fault ("" when none).
  std::string fired_site() const;

  /// Number of checks seen in `domain` since the last Arm*.
  uint64_t checks(Domain domain) const;

  /// The instrumentation hook: returns an injected RuntimeError when
  /// the armed schedule says this check fails, OK otherwise. Disarmed
  /// cost: one relaxed atomic load.
  Status Check(Domain domain, const char* site);

  // ---- Crash simulation (storage::File is the only caller) ----------

  /// Whether ArmCrashAtByte is in effect (crashed or not).
  bool crash_armed() const;

  /// Whether the simulated kill has fired: the process is "dead" and
  /// every subsequent durable-I/O operation must fail without effect.
  bool crashed() const;

  /// Persistence units consumed since ArmCrashAtByte (or process start
  /// when unarmed). Running a scenario once with a huge budget yields
  /// its total unit count, which bounds the sweep.
  uint64_t crash_units_consumed() const;

  /// Asks permission to persist `want` units. Returns how many may
  /// reach disk: `want` normally; fewer (the torn prefix) when the
  /// crash point falls inside this operation, marking the process
  /// crashed; 0 once crashed. Unarmed, always grants `want`.
  uint64_t ConsumePersistBudget(uint64_t want);

  /// The status every File operation returns once crashed.
  static Status CrashedStatus(const char* site);

 private:
  FaultInjector() = default;

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  Domain domain_ = Domain::kMutation;
  bool random_mode_ = false;
  uint64_t fail_at_ = 0;       // ArmNth target
  uint64_t rng_state_ = 0;     // ArmRandom stream
  uint32_t permille_ = 0;
  uint64_t counts_[3] = {0, 0, 0};
  bool fired_ = false;
  std::string fired_site_;

  // Crash-at-byte state. `crash_armed_` is its own atomic so the
  // disarmed fast path of ConsumePersistBudget stays lock-free.
  std::atomic<bool> crash_armed_{false};
  std::atomic<bool> crashed_{false};
  uint64_t crash_budget_ = 0;
  uint64_t crash_consumed_ = 0;
};

}  // namespace xsql

#endif  // XSQL_COMMON_FAULT_H_
