#ifndef XSQL_COMMON_FAULT_H_
#define XSQL_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/status.h"

namespace xsql {

/// Deterministic fault injection for robustness testing.
///
/// Instrumented code calls `Check(domain, site)` at every point where a
/// failure could realistically occur. In production the injector is
/// disarmed and a check is a single relaxed atomic load. Tests arm it
/// in one of two modes:
///  * `ArmNth(domain, n)` — the n-th check (1-based) in that domain
///    fails; sweeping n over 1,2,3,... visits *every* injection point of
///    a scenario in turn, which is how the atomicity property test
///    proves statement rollback at each mutation point;
///  * `ArmRandom(domain, seed, permille)` — each check fails with the
///    given per-mille probability from a seeded deterministic stream.
///
/// Four domains exist so a test can target one layer without also
/// tripping the others:
///  * `kMutation` — every `Database` mutator entry plus selected
///    mid-operation points (partial-state hazards);
///  * `kGuard` — every `ExecutionContext` budget/deadline check;
///  * `kIo` — every durable-I/O operation in `storage::File` (open,
///    sync, rename); an injected failure there models a short write or
///    a failed fsync that the process survives;
///  * `kNet` — every socket read/write in the wire layer
///    (`server/wire.cc`). Network faults are richer than pass/fail, so
///    they use their own schedule (`ArmNet` / `ArmNetNth` / `NetNext`)
///    returning an *action*: reset the connection, delay the
///    operation, truncate a write mid-frame, or silently drop a frame.
///
/// Orthogonal to the per-check schedules, `ArmCrashAtByte(k)` simulates
/// a *process kill* at an exact point in the durable-I/O byte stream:
/// the next `k` persistence units (one unit per byte fsynced, one per
/// metadata operation such as rename) succeed, the unit after that is
/// cut short, and from then on every `storage::File` operation fails
/// with "simulated crash" — nothing further reaches disk, exactly as if
/// the process had died. Sweeping k over 1,2,3,... drives a crash
/// through every byte boundary of a durable operation; tests then
/// reopen the on-disk state to prove recovery.
///
/// The injector is a process-wide singleton (tests own the process);
/// state is mutex-guarded once armed.
/// What a network-domain fault does to the socket operation that drew
/// it. Read-side operations treat kTruncate/kDrop as kReset (a dropped
/// or torn inbound frame surfaces as a dead connection anyway).
enum class NetFault : uint8_t {
  kNone = 0,
  kReset = 1,     // fail as if the peer reset the connection
  kDelay = 2,     // sleep, then proceed normally (stalls the peer)
  kTruncate = 3,  // writes: send a prefix of the bytes, then fail
  kDrop = 4,      // writes: swallow the frame, report success (lost reply)
};

/// Kind mask bits for FaultInjector::ArmNet.
constexpr uint32_t kNetReset = 1u << 0;
constexpr uint32_t kNetDelay = 1u << 1;
constexpr uint32_t kNetTruncate = 1u << 2;
constexpr uint32_t kNetDrop = 1u << 3;
constexpr uint32_t kNetAll = kNetReset | kNetDelay | kNetTruncate | kNetDrop;

/// One drawn network fault: the kind plus its parameters.
struct NetAction {
  NetFault kind = NetFault::kNone;
  uint32_t delay_ms = 0;    // kDelay: how long to stall
  uint64_t keep_bytes = 0;  // kTruncate: prefix length that reaches the wire
};

class FaultInjector {
 public:
  enum class Domain { kMutation = 0, kGuard = 1, kIo = 2, kNet = 3 };

  static FaultInjector& Global();

  /// Arms the injector: the `n`-th Check in `domain` (1-based) fails.
  void ArmNth(Domain domain, uint64_t n);

  /// Arms seeded probabilistic failure: each Check in `domain` fails
  /// with probability `permille`/1000.
  void ArmRandom(Domain domain, uint64_t seed, uint32_t permille);

  /// Arms the simulated process kill: after `k` further persistence
  /// units (bytes fsynced / metadata ops) the crash fires. Coexists
  /// with the per-check schedules; `Disarm` clears both.
  ///
  /// `scope` restricts the kill to one storage tree: only operations on
  /// paths starting with `scope` are charged against the budget, and
  /// once crashed only those paths fail — the rest of the process keeps
  /// its storage. That is how a replication test "kills" the in-process
  /// primary while the replica sharing the address space lives on.
  /// Empty scope (the default) reproduces the whole-process kill.
  void ArmCrashAtByte(uint64_t k, std::string scope = std::string());

  // ---- Network faults (server/wire.cc is the only caller) -----------

  /// Arms seeded random network faults: each socket operation whose
  /// site contains `site_filter` (empty matches all) draws a fault
  /// with probability `permille`/1000; the kind is drawn uniformly
  /// from the `kinds` mask (kNet* bits) and kDelay stalls are uniform
  /// in [1, max_delay_ms]. Coexists with the Check schedules and the
  /// crash simulation; `Disarm` clears all three.
  void ArmNet(uint64_t seed, uint32_t permille, uint32_t kinds,
              uint32_t max_delay_ms, const std::string& site_filter = "");

  /// Arms one deterministic network fault: the `n`-th (1-based) socket
  /// operation whose site contains `site_filter` suffers `kind`
  /// (kDelay stalls `delay_ms`; kTruncate keeps half the bytes).
  void ArmNetNth(const std::string& site_filter, NetFault kind, uint64_t n,
                 uint32_t delay_ms = 0);

  /// Draws the action for one socket operation. `site` names the
  /// operation (e.g. "net-srv-write"); `op_bytes` is the write size,
  /// used to pick a torn prefix for kTruncate. Disarmed cost: one
  /// relaxed atomic load. Thread-safe; concurrent connections share
  /// the one seeded stream.
  NetAction NetNext(const char* site, uint64_t op_bytes);

  bool net_armed() const {
    return net_armed_.load(std::memory_order_relaxed);
  }

  /// Network faults fired (actions other than kNone) since ArmNet*.
  uint64_t net_faults_fired() const;

  /// Disarms and resets counters/fired state.
  void Disarm();

  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Whether an injected fault has fired since the last Arm*.
  bool fired() const;

  /// Injection site of the last fired fault ("" when none).
  std::string fired_site() const;

  /// Number of checks seen in `domain` since the last Arm*.
  uint64_t checks(Domain domain) const;

  /// The instrumentation hook: returns an injected RuntimeError when
  /// the armed schedule says this check fails, OK otherwise. Disarmed
  /// cost: one relaxed atomic load.
  Status Check(Domain domain, const char* site);

  // ---- Crash simulation (storage::File is the only caller) ----------

  /// Whether ArmCrashAtByte is in effect (crashed or not).
  bool crash_armed() const;

  /// Whether the simulated kill has fired: the process is "dead" and
  /// every subsequent durable-I/O operation must fail without effect.
  bool crashed() const;

  /// Whether the kill has fired *for this path*: crashed, and `path`
  /// falls under the armed scope (an empty scope covers every path).
  bool crashed_for(const std::string& path) const;

  /// Persistence units consumed since ArmCrashAtByte (or process start
  /// when unarmed). Running a scenario once with a huge budget yields
  /// its total unit count, which bounds the sweep.
  uint64_t crash_units_consumed() const;

  /// Asks permission to persist `want` units at `path`. Returns how
  /// many may reach disk: `want` normally; fewer (the torn prefix)
  /// when the crash point falls inside this operation, marking the
  /// process crashed; 0 once crashed. Operations outside the armed
  /// scope are neither charged nor cut. Unarmed, always grants `want`.
  uint64_t ConsumePersistBudget(uint64_t want,
                                const std::string& path = std::string());

  /// The status every File operation returns once crashed.
  static Status CrashedStatus(const char* site);

 private:
  FaultInjector() = default;

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  Domain domain_ = Domain::kMutation;
  bool random_mode_ = false;
  uint64_t fail_at_ = 0;       // ArmNth target
  uint64_t rng_state_ = 0;     // ArmRandom stream
  uint32_t permille_ = 0;
  uint64_t counts_[4] = {0, 0, 0, 0};
  bool fired_ = false;
  std::string fired_site_;

  // Network-fault state. `net_armed_` is its own atomic so the
  // disarmed fast path of NetNext stays lock-free, and so arming net
  // faults does not start charging the Check domains (and vice versa).
  std::atomic<bool> net_armed_{false};
  bool net_random_mode_ = false;
  uint64_t net_rng_state_ = 0;
  uint32_t net_permille_ = 0;
  uint32_t net_kinds_ = 0;
  uint32_t net_max_delay_ms_ = 0;
  std::string net_site_filter_;
  NetFault net_nth_kind_ = NetFault::kNone;  // ArmNetNth target
  uint64_t net_fail_at_ = 0;
  uint32_t net_nth_delay_ms_ = 0;
  uint64_t net_matched_ = 0;  // matching ops seen since ArmNet*
  uint64_t net_fired_ = 0;

  // Crash-at-byte state. `crash_armed_` is its own atomic so the
  // disarmed fast path of ConsumePersistBudget stays lock-free.
  std::atomic<bool> crash_armed_{false};
  std::atomic<bool> crashed_{false};
  uint64_t crash_budget_ = 0;
  uint64_t crash_consumed_ = 0;
  std::string crash_scope_;  // path prefix the kill applies to ("" = all)
};

}  // namespace xsql

#endif  // XSQL_COMMON_FAULT_H_
