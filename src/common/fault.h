#ifndef XSQL_COMMON_FAULT_H_
#define XSQL_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/status.h"

namespace xsql {

/// Deterministic fault injection for robustness testing.
///
/// Instrumented code calls `Check(domain, site)` at every point where a
/// failure could realistically occur. In production the injector is
/// disarmed and a check is a single relaxed atomic load. Tests arm it
/// in one of two modes:
///  * `ArmNth(domain, n)` — the n-th check (1-based) in that domain
///    fails; sweeping n over 1,2,3,... visits *every* injection point of
///    a scenario in turn, which is how the atomicity property test
///    proves statement rollback at each mutation point;
///  * `ArmRandom(domain, seed, permille)` — each check fails with the
///    given per-mille probability from a seeded deterministic stream.
///
/// Two domains exist so a test can target the storage layer without
/// also tripping the evaluator's guard checks (and vice versa):
///  * `kMutation` — every `Database` mutator entry plus selected
///    mid-operation points (partial-state hazards);
///  * `kGuard` — every `ExecutionContext` budget/deadline check.
///
/// The injector is a process-wide singleton (tests own the process);
/// state is mutex-guarded once armed.
class FaultInjector {
 public:
  enum class Domain { kMutation = 0, kGuard = 1 };

  static FaultInjector& Global();

  /// Arms the injector: the `n`-th Check in `domain` (1-based) fails.
  void ArmNth(Domain domain, uint64_t n);

  /// Arms seeded probabilistic failure: each Check in `domain` fails
  /// with probability `permille`/1000.
  void ArmRandom(Domain domain, uint64_t seed, uint32_t permille);

  /// Disarms and resets counters/fired state.
  void Disarm();

  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Whether an injected fault has fired since the last Arm*.
  bool fired() const;

  /// Injection site of the last fired fault ("" when none).
  std::string fired_site() const;

  /// Number of checks seen in `domain` since the last Arm*.
  uint64_t checks(Domain domain) const;

  /// The instrumentation hook: returns an injected RuntimeError when
  /// the armed schedule says this check fails, OK otherwise. Disarmed
  /// cost: one relaxed atomic load.
  Status Check(Domain domain, const char* site);

 private:
  FaultInjector() = default;

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  Domain domain_ = Domain::kMutation;
  bool random_mode_ = false;
  uint64_t fail_at_ = 0;       // ArmNth target
  uint64_t rng_state_ = 0;     // ArmRandom stream
  uint32_t permille_ = 0;
  uint64_t counts_[2] = {0, 0};
  bool fired_ = false;
  std::string fired_site_;
};

}  // namespace xsql

#endif  // XSQL_COMMON_FAULT_H_
