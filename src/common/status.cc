#include "common/status.h"

namespace xsql {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kRuntimeError:
      return "RuntimeError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace xsql
