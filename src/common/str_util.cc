#include "common/str_util.h"

#include <cctype>

namespace xsql {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = std::tolower(static_cast<unsigned char>(c));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace xsql
