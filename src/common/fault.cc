#include "common/fault.h"

namespace xsql {

namespace {

// splitmix64: tiny, seedable, and good enough for fault schedules.
uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::ArmNth(Domain domain, uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  domain_ = domain;
  random_mode_ = false;
  fail_at_ = n;
  counts_[0] = counts_[1] = 0;
  fired_ = false;
  fired_site_.clear();
  armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::ArmRandom(Domain domain, uint64_t seed,
                              uint32_t permille) {
  std::lock_guard<std::mutex> lock(mu_);
  domain_ = domain;
  random_mode_ = true;
  rng_state_ = seed;
  permille_ = permille;
  counts_[0] = counts_[1] = 0;
  fired_ = false;
  fired_site_.clear();
  armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::ArmCrashAtByte(uint64_t k, std::string scope) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_budget_ = k;
  crash_consumed_ = 0;
  crash_scope_ = std::move(scope);
  crashed_.store(false, std::memory_order_relaxed);
  crash_armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_relaxed);
  fail_at_ = 0;
  permille_ = 0;
  counts_[0] = counts_[1] = counts_[2] = counts_[3] = 0;
  fired_ = false;
  fired_site_.clear();
  crash_armed_.store(false, std::memory_order_relaxed);
  crashed_.store(false, std::memory_order_relaxed);
  crash_budget_ = 0;
  crash_consumed_ = 0;
  crash_scope_.clear();
  net_armed_.store(false, std::memory_order_relaxed);
  net_random_mode_ = false;
  net_permille_ = 0;
  net_kinds_ = 0;
  net_max_delay_ms_ = 0;
  net_site_filter_.clear();
  net_nth_kind_ = NetFault::kNone;
  net_fail_at_ = 0;
  net_nth_delay_ms_ = 0;
  net_matched_ = 0;
  net_fired_ = 0;
}

void FaultInjector::ArmNet(uint64_t seed, uint32_t permille,
                           uint32_t kinds, uint32_t max_delay_ms,
                           const std::string& site_filter) {
  std::lock_guard<std::mutex> lock(mu_);
  net_random_mode_ = true;
  net_rng_state_ = seed;
  net_permille_ = permille;
  net_kinds_ = kinds == 0 ? kNetAll : kinds;
  net_max_delay_ms_ = max_delay_ms == 0 ? 1 : max_delay_ms;
  net_site_filter_ = site_filter;
  net_nth_kind_ = NetFault::kNone;
  net_fail_at_ = 0;
  net_matched_ = 0;
  net_fired_ = 0;
  net_armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::ArmNetNth(const std::string& site_filter, NetFault kind,
                              uint64_t n, uint32_t delay_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  net_random_mode_ = false;
  net_site_filter_ = site_filter;
  net_nth_kind_ = kind;
  net_fail_at_ = n;
  net_nth_delay_ms_ = delay_ms;
  net_matched_ = 0;
  net_fired_ = 0;
  net_armed_.store(true, std::memory_order_relaxed);
}

NetAction FaultInjector::NetNext(const char* site, uint64_t op_bytes) {
  NetAction action;
  if (!net_armed_.load(std::memory_order_relaxed)) return action;
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_[static_cast<int>(Domain::kNet)];
  if (!net_site_filter_.empty() &&
      std::string(site).find(net_site_filter_) == std::string::npos) {
    return action;
  }
  ++net_matched_;
  if (net_random_mode_) {
    if (net_permille_ == 0 ||
        NextRandom(&net_rng_state_) % 1000 >= net_permille_) {
      return action;
    }
    // Which kinds are enabled varies per test; draw until we hit one.
    // The mask is never empty (ArmNet maps 0 to kNetAll).
    do {
      action.kind =
          static_cast<NetFault>(1 + NextRandom(&net_rng_state_) % 4);
    } while ((net_kinds_ & (1u << (static_cast<int>(action.kind) - 1))) ==
             0);
    if (action.kind == NetFault::kDelay) {
      action.delay_ms = static_cast<uint32_t>(
          1 + NextRandom(&net_rng_state_) % net_max_delay_ms_);
    } else if (action.kind == NetFault::kTruncate) {
      action.keep_bytes =
          op_bytes == 0 ? 0 : NextRandom(&net_rng_state_) % op_bytes;
    }
  } else {
    if (net_fail_at_ == 0 || net_matched_ != net_fail_at_) return action;
    action.kind = net_nth_kind_;
    action.delay_ms = net_nth_delay_ms_;
    action.keep_bytes = op_bytes / 2;
  }
  if (action.kind != NetFault::kNone) {
    ++net_fired_;
    fired_ = true;
    fired_site_ = site;
  }
  return action;
}

uint64_t FaultInjector::net_faults_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return net_fired_;
}

bool FaultInjector::crash_armed() const {
  return crash_armed_.load(std::memory_order_relaxed);
}

bool FaultInjector::crashed() const {
  return crashed_.load(std::memory_order_relaxed);
}

bool FaultInjector::crashed_for(const std::string& path) const {
  if (!crashed_.load(std::memory_order_relaxed)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  return crash_scope_.empty() ||
         path.compare(0, crash_scope_.size(), crash_scope_) == 0;
}

uint64_t FaultInjector::crash_units_consumed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crash_consumed_;
}

uint64_t FaultInjector::ConsumePersistBudget(uint64_t want,
                                             const std::string& path) {
  if (!crash_armed_.load(std::memory_order_relaxed)) return want;
  std::lock_guard<std::mutex> lock(mu_);
  if (!crash_scope_.empty() &&
      path.compare(0, crash_scope_.size(), crash_scope_) != 0) {
    // Outside the kill's scope: this storage tree belongs to a process
    // that is still alive. Grant freely, charge nothing.
    return want;
  }
  if (crashed_.load(std::memory_order_relaxed)) return 0;
  if (want < crash_budget_) {
    crash_budget_ -= want;
    crash_consumed_ += want;
    return want;
  }
  // The crash point falls inside (or exactly at the end of) this
  // operation: grant the torn prefix and die.
  uint64_t allowed = crash_budget_;
  crash_consumed_ += allowed;
  crash_budget_ = 0;
  crashed_.store(true, std::memory_order_relaxed);
  fired_ = true;
  fired_site_ = "io-crash";
  return allowed;
}

Status FaultInjector::CrashedStatus(const char* site) {
  return Status::RuntimeError("simulated crash (io) at " +
                              std::string(site));
}

bool FaultInjector::fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

std::string FaultInjector::fired_site() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_site_;
}

uint64_t FaultInjector::checks(Domain domain) const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_[static_cast<int>(domain)];
}

Status FaultInjector::Check(Domain domain, const char* site) {
  if (!armed_.load(std::memory_order_relaxed)) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t count = ++counts_[static_cast<int>(domain)];
  if (domain != domain_) return Status::OK();
  bool fail;
  if (random_mode_) {
    fail = permille_ > 0 && NextRandom(&rng_state_) % 1000 < permille_;
  } else {
    fail = fail_at_ != 0 && count == fail_at_;
  }
  if (!fail) return Status::OK();
  fired_ = true;
  fired_site_ = site;
  return Status::RuntimeError("injected fault at " + std::string(site) +
                              " (check #" + std::to_string(count) + ")");
}

}  // namespace xsql
