#ifndef XSQL_COMMON_STATUS_H_
#define XSQL_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace xsql {

/// Error category of a failed operation.
///
/// The paper distinguishes several kinds of failure and we preserve that
/// taxonomy: a *type error* ("inapplicable" in §2) is different from an
/// undefined value (a null, which is not an error at all), and an
/// *ill-defined query* (§4.1, conflicting OID-function assignments) is a
/// run-time error rather than a static one.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed input (bad schema op, bad query shape)
  kParseError,        // lexer/parser rejection
  kTypeError,         // §6: query is not well-typed under the requested mode
  kNotFound,          // unknown oid/class/method
  kRuntimeError,      // §4.1 ill-defined query, OID conflicts, etc.
  kUnimplemented,
  kResourceExhausted, // an execution guardrail tripped (budget/deadline)
  kCancelled,         // cooperative cancellation was requested
  kUnavailable,       // transient overload / node down; safe to retry
};

/// Exception-free error propagation, RocksDB/Arrow style.
///
/// Functions that can fail return `Status` (or `Result<T>`); callers must
/// check `ok()` before using results.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status RuntimeError(std::string msg) {
    return Status(StatusCode::kRuntimeError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable one-line rendering, e.g. "TypeError: ...".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error sum, the return type of fallible producers.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): by design, like absl.
  Result(T value) : status_(), value_(std::move(value)), has_value_(true) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)), has_value_(false) {}

  bool ok() const { return has_value_ && status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

  const T& operator*() const& { return value_; }
  T& operator*() & { return value_; }
  const T* operator->() const { return &value_; }
  T* operator->() { return &value_; }

 private:
  Status status_;
  T value_{};
  bool has_value_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define XSQL_RETURN_IF_ERROR(expr)          \
  do {                                      \
    ::xsql::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (0)

/// Evaluates a Result<T> expression; assigns the value or propagates error.
#define XSQL_ASSIGN_OR_RETURN(lhs, expr)    \
  auto XSQL_CONCAT_(_res, __LINE__) = (expr);               \
  if (!XSQL_CONCAT_(_res, __LINE__).ok())                   \
    return XSQL_CONCAT_(_res, __LINE__).status();           \
  lhs = std::move(XSQL_CONCAT_(_res, __LINE__)).value()

#define XSQL_CONCAT_IMPL_(a, b) a##b
#define XSQL_CONCAT_(a, b) XSQL_CONCAT_IMPL_(a, b)

}  // namespace xsql

#endif  // XSQL_COMMON_STATUS_H_
