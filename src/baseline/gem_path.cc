#include "baseline/gem_path.h"

namespace xsql {
namespace baseline {

namespace {

/// The attribute's value as a set (empty when undefined), including
/// inherited defaults — shared by both evaluation styles so the work
/// per hop is identical and only the evaluation *shape* differs.
OidSet AttrValues(const Database& db, const Oid& obj, const Oid& attr) {
  const AttrValue* value = db.GetAttribute(obj, attr);
  return value == nullptr ? OidSet() : value->AsSet();
}

}  // namespace

OidSet EvalOneSweep(const Database& db, const SimplePathQuery& query) {
  OidSet frontier = db.Extent(query.start_class);
  for (const Oid& attr : query.attrs) {
    // Collect then dedupe once per hop: the frontier stays a *set* of
    // objects (bounded by the database), never a multiset of paths.
    std::vector<Oid> next;
    for (const Oid& obj : frontier) {
      for (const Oid& v : AttrValues(db, obj, attr)) {
        next.push_back(v);
      }
    }
    frontier = OidSet(std::move(next));
  }
  if (query.final_value.has_value()) {
    OidSet out;
    if (frontier.Contains(*query.final_value)) out.Insert(*query.final_value);
    return out;
  }
  return frontier;
}

OidSet EvalDecomposed(const Database& db, const SimplePathQuery& query,
                      size_t* materialized_tuples) {
  // R0 = {(x, x) | x in extent}; each hop joins with the attribute and
  // collapses set values into one tuple per element, materializing the
  // whole intermediate relation.
  size_t total = 0;
  std::vector<std::pair<Oid, Oid>> relation;
  for (const Oid& obj : db.Extent(query.start_class)) {
    relation.emplace_back(obj, obj);
  }
  total += relation.size();
  for (const Oid& attr : query.attrs) {
    std::vector<std::pair<Oid, Oid>> next;
    for (const auto& [start, current] : relation) {
      for (const Oid& value : AttrValues(db, current, attr)) {
        next.emplace_back(start, value);  // collapse: one tuple per element
      }
    }
    relation = std::move(next);
    total += relation.size();
  }
  if (materialized_tuples != nullptr) *materialized_tuples = total;
  OidSet out;
  for (const auto& [start, value] : relation) {
    if (!query.final_value.has_value() || value == *query.final_value) {
      out.Insert(value);
    }
  }
  return out;
}

bool AnyPath(const Database& db, const SimplePathQuery& query) {
  return !EvalOneSweep(db, query).empty();
}

}  // namespace baseline
}  // namespace xsql
