#ifndef XSQL_BASELINE_RELATIONAL_H_
#define XSQL_BASELINE_RELATIONAL_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "oid/oid.h"
#include "store/database.h"

namespace xsql {
namespace baseline {

/// A relational encoding of the object database, the comparison point
/// for §1/§3.3: per-attribute binary tables (set-valued attributes
/// become link tables, i.e. first-normal-form flattening), class extents
/// as unary tables, and the system-catalog tables (CLASSES, ISA,
/// ATTRIBUTES) a relational user must join against to answer schema
/// questions that XSQL expresses directly in the query language.
class RelationalDb {
 public:
  /// Flattens the object database. Call again after mutations.
  static RelationalDb Flatten(const Database& db);

  /// Evaluates `start_class --attr1--> ... --attrk-->` as a chain of
  /// hash joins over the attribute tables, optionally filtering the
  /// final column. `joined_tuples` reports the total intermediate
  /// cardinality (the join work).
  OidSet EvalPathJoin(const Oid& start_class, const std::vector<Oid>& attrs,
                      const std::optional<Oid>& final_value,
                      size_t* joined_tuples) const;

  /// An explicit join (§3.3 query (6) shape): pairs (a, b) with
  /// a ∈ class_a, b ∈ class_b and a.attr_a = b.attr_b, via a hash join.
  std::vector<std::pair<Oid, Oid>> EqJoin(const Oid& class_a,
                                          const Oid& attr_a,
                                          const Oid& class_b,
                                          const Oid& attr_b) const;

  /// Schema browsing the relational way: the transitive closure of the
  /// ISA catalog table computed by iterated self-joins, returning all
  /// strict superclasses of `cls` (the §1 "engine types" question).
  std::vector<Oid> SuperclassesViaCatalog(const Oid& cls) const;

  /// All (class, attribute) rows of the ATTRIBUTES catalog table whose
  /// attribute equals `attr` — "which classes define WonNobelPrize".
  std::vector<Oid> ClassesWithAttributeViaCatalog(const Oid& attr) const;

  size_t attribute_table_rows() const { return attribute_rows_; }

 private:
  // attr -> (obj -> values); flattened 1NF link tables with a hash index.
  std::unordered_map<Oid, std::unordered_map<Oid, std::vector<Oid>, OidHash>,
                     OidHash>
      attr_tables_;
  // class -> extent rows.
  std::unordered_map<Oid, std::vector<Oid>, OidHash> extents_;
  // Catalog tables.
  std::vector<std::pair<Oid, Oid>> isa_table_;        // (sub, super)
  std::vector<std::pair<Oid, Oid>> attributes_table_; // (class, attr)
  size_t attribute_rows_ = 0;
};

}  // namespace baseline
}  // namespace xsql

#endif  // XSQL_BASELINE_RELATIONAL_H_
