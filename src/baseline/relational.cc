#include "baseline/relational.h"

#include <deque>

namespace xsql {
namespace baseline {

RelationalDb RelationalDb::Flatten(const Database& db) {
  RelationalDb out;
  db.ForEachObject([&](const Oid& oid, const Object& object) {
    for (const auto& [attr, value] : object.attrs()) {
      auto& table = out.attr_tables_[attr];
      std::vector<Oid>& rows = table[oid];
      if (value.set_valued()) {
        for (const Oid& v : value.set()) rows.push_back(v);
      } else {
        rows.push_back(value.scalar());
      }
      out.attribute_rows_ += rows.size();
    }
  });
  for (const Oid& cls : db.graph().classes()) {
    OidSet extent = db.graph().Extent(cls);
    out.extents_[cls] =
        std::vector<Oid>(extent.elems().begin(), extent.elems().end());
    for (const Oid& super : db.graph().DirectSuperclasses(cls)) {
      out.isa_table_.emplace_back(cls, super);
    }
    for (const Oid& attr : db.signatures().DeclaredMethods(cls)) {
      out.attributes_table_.emplace_back(cls, attr);
    }
  }
  return out;
}

OidSet RelationalDb::EvalPathJoin(const Oid& start_class,
                                  const std::vector<Oid>& attrs,
                                  const std::optional<Oid>& final_value,
                                  size_t* joined_tuples) const {
  size_t total = 0;
  std::vector<Oid> current;
  auto it = extents_.find(start_class);
  if (it != extents_.end()) current = it->second;
  total += current.size();
  for (const Oid& attr : attrs) {
    std::vector<Oid> next;
    auto table = attr_tables_.find(attr);
    if (table == attr_tables_.end()) {
      current.clear();
      break;
    }
    for (const Oid& obj : current) {
      auto rows = table->second.find(obj);
      if (rows == table->second.end()) continue;
      for (const Oid& v : rows->second) next.push_back(v);
    }
    current = std::move(next);
    total += current.size();
  }
  if (joined_tuples != nullptr) *joined_tuples = total;
  OidSet out;
  for (const Oid& v : current) {
    if (!final_value.has_value() || v == *final_value) out.Insert(v);
  }
  return out;
}

std::vector<std::pair<Oid, Oid>> RelationalDb::EqJoin(const Oid& class_a,
                                                      const Oid& attr_a,
                                                      const Oid& class_b,
                                                      const Oid& attr_b) const {
  std::vector<std::pair<Oid, Oid>> out;
  auto ext_a = extents_.find(class_a);
  auto ext_b = extents_.find(class_b);
  auto tab_a = attr_tables_.find(attr_a);
  auto tab_b = attr_tables_.find(attr_b);
  if (ext_a == extents_.end() || ext_b == extents_.end() ||
      tab_a == attr_tables_.end() || tab_b == attr_tables_.end()) {
    return out;
  }
  // Build: value -> objects of class_a having attr_a = value.
  std::unordered_map<Oid, std::vector<Oid>, OidHash> build;
  for (const Oid& a : ext_a->second) {
    auto rows = tab_a->second.find(a);
    if (rows == tab_a->second.end()) continue;
    for (const Oid& v : rows->second) build[v].push_back(a);
  }
  // Probe with class_b.
  for (const Oid& b : ext_b->second) {
    auto rows = tab_b->second.find(b);
    if (rows == tab_b->second.end()) continue;
    for (const Oid& v : rows->second) {
      auto match = build.find(v);
      if (match == build.end()) continue;
      for (const Oid& a : match->second) out.emplace_back(a, b);
    }
  }
  return out;
}

std::vector<Oid> RelationalDb::SuperclassesViaCatalog(const Oid& cls) const {
  // Iterated self-join of the ISA table (semi-naive closure), the way a
  // relational user reaches transitive superclasses.
  std::vector<Oid> out;
  OidSet seen;
  std::deque<Oid> frontier{cls};
  while (!frontier.empty()) {
    Oid cur = frontier.front();
    frontier.pop_front();
    for (const auto& [sub, super] : isa_table_) {
      if (sub == cur && !seen.Contains(super)) {
        seen.Insert(super);
        out.push_back(super);
        frontier.push_back(super);
      }
    }
  }
  return out;
}

std::vector<Oid> RelationalDb::ClassesWithAttributeViaCatalog(
    const Oid& attr) const {
  std::vector<Oid> out;
  for (const auto& [cls, a] : attributes_table_) {
    if (a == attr) out.push_back(cls);
  }
  return out;
}

}  // namespace baseline
}  // namespace xsql
