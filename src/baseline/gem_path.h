#ifndef XSQL_BASELINE_GEM_PATH_H_
#define XSQL_BASELINE_GEM_PATH_H_

#include <optional>
#include <vector>

#include "common/status.h"
#include "oid/oid.h"
#include "store/database.h"

namespace xsql {
namespace baseline {

/// A GEM-style [ZAN83] simple path query: follow a chain of attribute
/// names from the extent of a class, optionally filtering the final
/// value. This is the fragment the original dot notation covered — no
/// intermediate selectors, no variables over attributes, no methods.
struct SimplePathQuery {
  Oid start_class;
  std::vector<Oid> attrs;
  std::optional<Oid> final_value;  // keep only paths ending here
};

/// Evaluates the query the XSQL way: one sweep over the composition
/// hierarchy, streaming through set-valued attributes without
/// materializing anything (intro feature 4).
OidSet EvalOneSweep(const Database& db, const SimplePathQuery& query);

/// Evaluates the query the pre-XSQL way: the path is broken into one
/// hop per attribute; each hop materializes the intermediate relation
/// {(start, value)} and set-valued attributes require a "collapse"
/// (unnest) producing one tuple per element. `materialized_tuples`
/// returns the total size of the intermediates — the cost the one-sweep
/// evaluation avoids.
OidSet EvalDecomposed(const Database& db, const SimplePathQuery& query,
                      size_t* materialized_tuples);

/// Like EvalOneSweep but also returns, per start object, whether any
/// path reached the final value — the Boolean-predicate use of a path.
bool AnyPath(const Database& db, const SimplePathQuery& query);

}  // namespace baseline
}  // namespace xsql

#endif  // XSQL_BASELINE_GEM_PATH_H_
