#include "workload/generator.h"

#include <memory>
#include <string>
#include <vector>

#include "eval/evaluator.h"
#include "workload/fig1_schema.h"

namespace xsql {
namespace workload {

namespace {

const char* kCities[] = {"newyork", "austin", "sanfrancisco", "boston",
                         "chicago"};
const char* kColors[] = {"blue", "red", "white", "black", "silver"};
const char* kFunctions[] = {"advertizing", "engineering", "sales",
                            "research"};
const char* kTransmissions[] = {"manual", "automatic"};

Oid A(const std::string& name) { return Oid::Atom(name); }
Oid S(const std::string& value) { return Oid::String(value); }

class Generator {
 public:
  Generator(Database* db, const WorkloadParams& params)
      : db_(db), params_(params), rng_(params.seed) {}

  Result<WorkloadStats> Run() {
    XSQL_RETURN_IF_ERROR(MakePersons());
    XSQL_RETURN_IF_ERROR(MakeCompanies());
    XSQL_RETURN_IF_ERROR(MakeAutomobiles());
    XSQL_RETURN_IF_ERROR(AssignOwnership());
    if (params_.include_named_individuals) {
      XSQL_RETURN_IF_ERROR(MakeNamedIndividuals());
    }
    return stats_;
  }

 private:
  Result<Oid> MakeAddress(const std::string& tag) {
    Oid addr = A("addr_" + tag);
    XSQL_RETURN_IF_ERROR(db_->NewObject(addr, {fig1::Address()}));
    XSQL_RETURN_IF_ERROR(db_->SetScalar(
        addr, A("Street"), S(std::to_string(rng_.Range(1, 999)) + " main st")));
    XSQL_RETURN_IF_ERROR(db_->SetScalar(
        addr, A("City"), S(kCities[rng_.Uniform(std::size(kCities))])));
    XSQL_RETURN_IF_ERROR(db_->SetScalar(addr, A("State"), S("tx")));
    XSQL_RETURN_IF_ERROR(
        db_->SetScalar(addr, A("Phone"), Oid::Int(rng_.Range(1000, 9999))));
    ++stats_.addresses;
    return addr;
  }

  Status MakePerson(const Oid& oid, const Oid& cls, const std::string& name) {
    XSQL_RETURN_IF_ERROR(db_->NewObject(oid, {cls}));
    XSQL_RETURN_IF_ERROR(db_->SetScalar(oid, A("Name"), S(name)));
    XSQL_RETURN_IF_ERROR(
        db_->SetScalar(oid, A("Age"), Oid::Int(rng_.Range(16, 80))));
    XSQL_ASSIGN_OR_RETURN(Oid addr, MakeAddress("p" + name));
    XSQL_RETURN_IF_ERROR(db_->SetScalar(oid, A("Residence"), addr));
    ++stats_.persons;
    return Status::OK();
  }

  Status MakePersons() {
    for (size_t i = 0; i < params_.extra_persons; ++i) {
      Oid person = A("person" + std::to_string(i));
      XSQL_RETURN_IF_ERROR(
          MakePerson(person, fig1::Person(), "person" + std::to_string(i)));
      persons_.push_back(person);
    }
    return Status::OK();
  }

  Result<Oid> MakeEmployee(const std::string& tag) {
    Oid emp = A("emp_" + tag);
    XSQL_RETURN_IF_ERROR(MakePerson(emp, fig1::Employee(), "emp_" + tag));
    XSQL_RETURN_IF_ERROR(db_->SetScalar(
        emp, A("Salary"), Oid::Int(rng_.Range(20000, 120000))));
    OidSet quals;
    quals.Insert(S("bs"));
    if (rng_.Percent(40)) quals.Insert(S("ms"));
    XSQL_RETURN_IF_ERROR(db_->SetSet(emp, A("Qualifications"), quals));
    // Family members drawn from the person pool.
    if (!persons_.empty()) {
      OidSet family;
      size_t n = rng_.Uniform(params_.max_family + 1);
      for (size_t i = 0; i < n; ++i) {
        family.Insert(persons_[rng_.Uniform(persons_.size())]);
      }
      if (!family.empty()) {
        XSQL_RETURN_IF_ERROR(db_->SetSet(emp, A("FamMembers"), family));
        if (rng_.Percent(50)) {
          XSQL_RETURN_IF_ERROR(db_->SetSet(emp, A("Dependents"), family));
        }
      }
    }
    employees_.push_back(emp);
    ++stats_.employees;
    return emp;
  }

  Status MakeCompanies() {
    for (size_t c = 0; c < params_.companies; ++c) {
      std::string ctag = std::to_string(c);
      Oid comp = A("comp" + ctag);
      std::string comp_name = "company" + ctag;
      XSQL_RETURN_IF_ERROR(db_->NewObject(comp, {fig1::Company()}));
      XSQL_RETURN_IF_ERROR(db_->SetScalar(comp, A("Name"), S(comp_name)));
      XSQL_ASSIGN_OR_RETURN(Oid hq, MakeAddress("c" + ctag));
      XSQL_RETURN_IF_ERROR(db_->SetScalar(comp, A("Headquarters"), hq));
      companies_.push_back(comp);
      ++stats_.companies;

      OidSet divisions;
      Oid first_employee;
      for (size_t d = 0; d < params_.divisions_per_company; ++d) {
        std::string dtag = ctag + "_" + std::to_string(d);
        Oid div = A("div" + dtag);
        XSQL_RETURN_IF_ERROR(db_->NewObject(div, {fig1::Division()}));
        XSQL_RETURN_IF_ERROR(db_->SetScalar(
            div, A("Name"),
            S(kFunctions[d % std::size(kFunctions)])));
        XSQL_RETURN_IF_ERROR(db_->SetScalar(
            div, A("Function"), S(kFunctions[d % std::size(kFunctions)])));
        XSQL_ASSIGN_OR_RETURN(Oid loc, MakeAddress("d" + dtag));
        XSQL_RETURN_IF_ERROR(db_->SetScalar(div, A("Location"), loc));
        OidSet div_employees;
        Oid manager;
        for (size_t e = 0; e < params_.employees_per_division; ++e) {
          XSQL_ASSIGN_OR_RETURN(
              Oid emp, MakeEmployee(dtag + "_" + std::to_string(e)));
          div_employees.Insert(emp);
          if (e == 0) manager = emp;
          if (c == 0 && d == 0 && e == 1) {
            // One employee shares the company's name: the explicit-join
            // query (6) has a non-empty answer.
            XSQL_RETURN_IF_ERROR(
                db_->SetScalar(emp, A("Name"), S(comp_name)));
          }
          if (first_employee.is_nil()) first_employee = emp;
        }
        XSQL_RETURN_IF_ERROR(db_->SetScalar(div, A("Manager"), manager));
        XSQL_RETURN_IF_ERROR(db_->SetSet(div, A("Employees"), div_employees));
        divisions.Insert(div);
        ++stats_.divisions;
      }
      XSQL_RETURN_IF_ERROR(db_->SetSet(comp, A("Divisions"), divisions));
      if (!first_employee.is_nil()) {
        XSQL_RETURN_IF_ERROR(db_->SetScalar(comp, A("President"),
                                            first_employee));
        presidents_.push_back(first_employee);
      }
      // Retirees (footnote 9) from the person pool.
      if (!persons_.empty()) {
        OidSet retirees;
        retirees.Insert(persons_[rng_.Uniform(persons_.size())]);
        XSQL_RETURN_IF_ERROR(db_->SetSet(comp, A("Retirees"), retirees));
      }
    }
    return Status::OK();
  }

  Status MakeAutomobiles() {
    static const Oid kEngineClasses[] = {
        fig1::TurboEngine(), fig1::DieselEngine(), fig1::TwoStrokeEngine()};
    for (size_t i = 0; i < params_.automobiles; ++i) {
      std::string tag = std::to_string(i);
      Oid engine = A("eng" + tag);
      XSQL_RETURN_IF_ERROR(db_->NewObject(
          engine, {kEngineClasses[rng_.Uniform(std::size(kEngineClasses))]}));
      XSQL_RETURN_IF_ERROR(db_->SetScalar(engine, A("HPpower"),
                                          Oid::Int(rng_.Range(60, 600))));
      XSQL_RETURN_IF_ERROR(db_->SetScalar(engine, A("CCsize"),
                                          Oid::Int(rng_.Range(900, 6000))));
      XSQL_RETURN_IF_ERROR(
          db_->SetScalar(engine, A("CylinderN"), Oid::Int(rng_.Range(2, 12))));

      Oid drivetrain = A("dt" + tag);
      XSQL_RETURN_IF_ERROR(
          db_->NewObject(drivetrain, {fig1::VehicleDrivetrain()}));
      XSQL_RETURN_IF_ERROR(db_->SetScalar(drivetrain, A("Engine"), engine));
      XSQL_RETURN_IF_ERROR(db_->SetScalar(
          drivetrain, A("Transmission"),
          S(kTransmissions[rng_.Uniform(std::size(kTransmissions))])));

      Oid body = A("body" + tag);
      XSQL_RETURN_IF_ERROR(db_->NewObject(body, {fig1::AutoBody()}));
      XSQL_RETURN_IF_ERROR(db_->SetScalar(body, A("Chassis"), S("steel")));
      XSQL_RETURN_IF_ERROR(db_->SetScalar(body, A("Interior"), S("cloth")));
      XSQL_RETURN_IF_ERROR(
          db_->SetScalar(body, A("Doors"), Oid::Int(rng_.Range(2, 5))));

      Oid automobile = A("auto" + tag);
      XSQL_RETURN_IF_ERROR(db_->NewObject(automobile, {fig1::Automobile()}));
      XSQL_RETURN_IF_ERROR(
          db_->SetScalar(automobile, A("Model"), S("model" + tag)));
      XSQL_RETURN_IF_ERROR(db_->SetScalar(
          automobile, A("Color"),
          S(kColors[rng_.Uniform(std::size(kColors))])));
      if (!companies_.empty()) {
        XSQL_RETURN_IF_ERROR(db_->SetScalar(
            automobile, A("Manufacturer"),
            companies_[i % companies_.size()]));
      }
      XSQL_RETURN_IF_ERROR(
          db_->SetScalar(automobile, A("Drivetrain"), drivetrain));
      XSQL_RETURN_IF_ERROR(db_->SetScalar(automobile, A("Body"), body));
      automobiles_.push_back(automobile);
      ++stats_.automobiles;
    }
    return Status::OK();
  }

  Status AssignOwnership() {
    if (automobiles_.empty()) return Status::OK();
    std::vector<Oid> owners = employees_;
    owners.insert(owners.end(), persons_.begin(), persons_.end());
    for (const Oid& owner : owners) {
      size_t n = rng_.Uniform(params_.max_owned + 1);
      OidSet owned;
      for (size_t i = 0; i < n; ++i) {
        owned.Insert(automobiles_[rng_.Uniform(automobiles_.size())]);
      }
      if (!owned.empty()) {
        XSQL_RETURN_IF_ERROR(db_->SetSet(owner, A("OwnedVehicles"), owned));
      }
    }
    // Make the §3.2 containsEq query satisfiable: company0's president
    // is young and owns a blue and a red vehicle.
    if (!presidents_.empty() && automobiles_.size() >= 2) {
      const Oid& president = presidents_[0];
      XSQL_RETURN_IF_ERROR(db_->SetScalar(president, A("Age"), Oid::Int(28)));
      Oid blue = automobiles_[0];
      Oid red = automobiles_[1 % automobiles_.size()];
      XSQL_RETURN_IF_ERROR(db_->SetScalar(blue, A("Color"), S("blue")));
      XSQL_RETURN_IF_ERROR(db_->SetScalar(red, A("Color"), S("red")));
      OidSet owned;
      owned.Insert(blue);
      owned.Insert(red);
      XSQL_RETURN_IF_ERROR(
          db_->SetSet(president, A("OwnedVehicles"), owned));
    }
    return Status::OK();
  }

  Status MakeNamedIndividuals() {
    // mary123: the §3.1 running example; lives in New York.
    Oid mary = A("mary123");
    XSQL_RETURN_IF_ERROR(MakePerson(mary, fig1::Person(), "mary"));
    Oid mary_addr = A("addr_mary123");
    XSQL_RETURN_IF_ERROR(db_->NewObject(mary_addr, {fig1::Address()}));
    XSQL_RETURN_IF_ERROR(db_->SetScalar(mary_addr, A("Street"),
                                        S("5 park ave")));
    XSQL_RETURN_IF_ERROR(db_->SetScalar(mary_addr, A("City"), S("newyork")));
    XSQL_RETURN_IF_ERROR(db_->SetScalar(mary_addr, A("State"), S("ny")));
    XSQL_RETURN_IF_ERROR(db_->SetScalar(mary, A("Residence"), mary_addr));

    // _john13: family members straddling age 20 (§3.2).
    Oid john = A("_john13");
    XSQL_RETURN_IF_ERROR(MakePerson(john, fig1::Employee(), "john"));
    XSQL_RETURN_IF_ERROR(db_->SetScalar(john, A("Salary"), Oid::Int(48000)));
    Oid kid = A("john_kid");
    XSQL_RETURN_IF_ERROR(MakePerson(kid, fig1::Person(), "kid"));
    XSQL_RETURN_IF_ERROR(db_->SetScalar(kid, A("Age"), Oid::Int(12)));
    Oid spouse = A("john_spouse");
    XSQL_RETURN_IF_ERROR(MakePerson(spouse, fig1::Person(), "spouse"));
    XSQL_RETURN_IF_ERROR(db_->SetScalar(spouse, A("Age"), Oid::Int(42)));
    OidSet family;
    family.Insert(kid);
    family.Insert(spouse);
    XSQL_RETURN_IF_ERROR(db_->SetSet(john, A("FamMembers"), family));

    // bigfam_emp: the §3.2 aggregate query's witness — more than 4
    // family members, all sharing one residence, salary under 35000.
    Oid bigfam = A("bigfam_emp");
    XSQL_RETURN_IF_ERROR(MakePerson(bigfam, fig1::Employee(), "bigfam"));
    XSQL_RETURN_IF_ERROR(
        db_->SetScalar(bigfam, A("Salary"), Oid::Int(30000)));
    const AttrValue* res = db_->GetAttribute(bigfam, A("Residence"));
    Oid home = res->scalar();
    OidSet big_family;
    for (int i = 0; i < 5; ++i) {
      Oid member = A("bigfam_m" + std::to_string(i));
      XSQL_RETURN_IF_ERROR(MakePerson(member, fig1::Person(),
                                      "bigfam_m" + std::to_string(i)));
      XSQL_RETURN_IF_ERROR(db_->SetScalar(member, A("Residence"), home));
      big_family.Insert(member);
    }
    XSQL_RETURN_IF_ERROR(db_->SetSet(bigfam, A("FamMembers"), big_family));

    // uniSQL with a president whose family has names (§3.1).
    Oid unisql = A("uniSQL");
    XSQL_RETURN_IF_ERROR(db_->NewObject(unisql, {fig1::Company()}));
    XSQL_RETURN_IF_ERROR(db_->SetScalar(unisql, A("Name"), S("UniSQL")));
    Oid pres = A("unisql_pres");
    XSQL_RETURN_IF_ERROR(MakePerson(pres, fig1::Employee(), "kim"));
    XSQL_RETURN_IF_ERROR(db_->SetScalar(pres, A("Salary"), Oid::Int(90000)));
    XSQL_RETURN_IF_ERROR(db_->SetScalar(unisql, A("President"), pres));
    XSQL_RETURN_IF_ERROR(db_->SetSet(pres, A("FamMembers"), family));
    OidSet unisql_divs;
    Oid unisql_div = A("unisql_div0");
    XSQL_RETURN_IF_ERROR(db_->NewObject(unisql_div, {fig1::Division()}));
    XSQL_RETURN_IF_ERROR(
        db_->SetScalar(unisql_div, A("Name"), S("engineering")));
    XSQL_RETURN_IF_ERROR(db_->SetScalar(unisql_div, A("Manager"), pres));
    OidSet unisql_emps;
    unisql_emps.Insert(pres);
    unisql_emps.Insert(john);
    XSQL_RETURN_IF_ERROR(
        db_->SetSet(unisql_div, A("Employees"), unisql_emps));
    unisql_divs.Insert(unisql_div);
    XSQL_RETURN_IF_ERROR(db_->SetSet(unisql, A("Divisions"), unisql_divs));

    // OO_Forum: an association whose Member method maps a year to one of
    // the member organizations (§6.2 fragment (19)).
    Oid forum = A("OO_Forum");
    XSQL_RETURN_IF_ERROR(db_->NewObject(forum, {fig1::Association()}));
    std::vector<Oid> members = companies_;
    members.push_back(unisql);
    auto member_fn = [members](Database& db, const Oid& receiver,
                               const std::vector<Oid>& args)
        -> Result<OidSet> {
      OidSet out;
      if (args.size() == 1 && args[0].is_numeric() && !members.empty()) {
        size_t index = static_cast<size_t>(args[0].numeric_value());
        out.Insert(members[index % members.size()]);
      }
      return out;
    };
    XSQL_RETURN_IF_ERROR(db_->DefineMethod(
        fig1::Association(), A("Member"), 1,
        std::make_shared<NativeMethodBody>(1, /*set_valued=*/false,
                                           member_fn)));
    return Status::OK();
  }

  Database* db_;
  const WorkloadParams& params_;
  Rng rng_;
  WorkloadStats stats_;
  std::vector<Oid> persons_;
  std::vector<Oid> employees_;
  std::vector<Oid> companies_;
  std::vector<Oid> presidents_;
  std::vector<Oid> automobiles_;
};

}  // namespace

Result<WorkloadStats> GenerateFig1Data(Database* db,
                                       const WorkloadParams& params) {
  Generator generator(db, params);
  return generator.Run();
}

}  // namespace workload
}  // namespace xsql
