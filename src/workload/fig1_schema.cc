#include "workload/fig1_schema.h"

#include "store/catalog.h"

namespace xsql {
namespace workload {

namespace fig1 {
Oid Vehicle() { return Oid::Atom("Vehicle"); }
Oid Motorbike() { return Oid::Atom("Motorbike"); }
Oid Bicycle() { return Oid::Atom("Bicycle"); }
Oid Automobile() { return Oid::Atom("Automobile"); }
Oid Person() { return Oid::Atom("Person"); }
Oid Employee() { return Oid::Atom("Employee"); }
Oid Company() { return Oid::Atom("Company"); }
Oid Division() { return Oid::Atom("Division"); }
Oid Address() { return Oid::Atom("Address"); }
Oid VehicleDrivetrain() { return Oid::Atom("VehicleDrivetrain"); }
Oid AutoBody() { return Oid::Atom("AutoBody"); }
Oid PistonEngine() { return Oid::Atom("PistonEngine"); }
Oid TwoStrokeEngine() { return Oid::Atom("TwoStrokeEngine"); }
Oid FourStrokeEngine() { return Oid::Atom("FourStrokeEngine"); }
Oid TurboEngine() { return Oid::Atom("TurboEngine"); }
Oid DieselEngine() { return Oid::Atom("DieselEngine"); }
Oid Organization() { return Oid::Atom("Organization"); }
Oid Association() { return Oid::Atom("Association"); }
}  // namespace fig1

namespace {

Status Attr(Database* db, const Oid& cls, const char* name, const Oid& result,
            bool set_valued = false) {
  return db->DeclareAttribute(cls, Oid::Atom(name), result, set_valued);
}

}  // namespace

Status BuildFig1Schema(Database* db) {
  using namespace fig1;  // NOLINT(build/namespaces): local schema helpers
  const Oid str = builtin::String();
  const Oid num = builtin::Numeral();

  // IS-A hierarchy (thick arrows of Figure 1).
  XSQL_RETURN_IF_ERROR(db->DeclareClass(Vehicle()));
  XSQL_RETURN_IF_ERROR(db->DeclareClass(Motorbike(), {Vehicle()}));
  XSQL_RETURN_IF_ERROR(db->DeclareClass(Bicycle(), {Vehicle()}));
  XSQL_RETURN_IF_ERROR(db->DeclareClass(Automobile(), {Vehicle()}));
  XSQL_RETURN_IF_ERROR(db->DeclareClass(Person()));
  XSQL_RETURN_IF_ERROR(db->DeclareClass(Employee(), {Person()}));
  XSQL_RETURN_IF_ERROR(db->DeclareClass(Organization()));
  XSQL_RETURN_IF_ERROR(db->DeclareClass(Company(), {Organization()}));
  XSQL_RETURN_IF_ERROR(db->DeclareClass(Division()));
  XSQL_RETURN_IF_ERROR(db->DeclareClass(Address()));
  XSQL_RETURN_IF_ERROR(db->DeclareClass(VehicleDrivetrain()));
  XSQL_RETURN_IF_ERROR(db->DeclareClass(AutoBody()));
  XSQL_RETURN_IF_ERROR(db->DeclareClass(PistonEngine()));
  XSQL_RETURN_IF_ERROR(db->DeclareClass(TwoStrokeEngine(), {PistonEngine()}));
  XSQL_RETURN_IF_ERROR(db->DeclareClass(FourStrokeEngine(), {PistonEngine()}));
  XSQL_RETURN_IF_ERROR(db->DeclareClass(TurboEngine(), {FourStrokeEngine()}));
  XSQL_RETURN_IF_ERROR(db->DeclareClass(DieselEngine(), {FourStrokeEngine()}));
  XSQL_RETURN_IF_ERROR(db->DeclareClass(Association()));

  // Composition (thin arrows; * marks set-valued).
  XSQL_RETURN_IF_ERROR(Attr(db, Vehicle(), "Model", str));
  XSQL_RETURN_IF_ERROR(Attr(db, Vehicle(), "Manufacturer", Company()));
  XSQL_RETURN_IF_ERROR(Attr(db, Vehicle(), "Color", str));
  XSQL_RETURN_IF_ERROR(Attr(db, Motorbike(), "Size", num));
  XSQL_RETURN_IF_ERROR(
      Attr(db, Automobile(), "Drivetrain", VehicleDrivetrain()));
  XSQL_RETURN_IF_ERROR(Attr(db, Automobile(), "Body", AutoBody()));
  XSQL_RETURN_IF_ERROR(Attr(db, Motorbike(), "Drivetrain",
                            VehicleDrivetrain()));

  XSQL_RETURN_IF_ERROR(Attr(db, Person(), "Name", str));
  XSQL_RETURN_IF_ERROR(Attr(db, Person(), "Age", num));
  XSQL_RETURN_IF_ERROR(Attr(db, Person(), "Residence", Address()));
  XSQL_RETURN_IF_ERROR(
      Attr(db, Person(), "OwnedVehicles", Vehicle(), /*set_valued=*/true));

  XSQL_RETURN_IF_ERROR(
      Attr(db, Employee(), "Qualifications", str, /*set_valued=*/true));
  XSQL_RETURN_IF_ERROR(Attr(db, Employee(), "Salary", num));
  XSQL_RETURN_IF_ERROR(
      Attr(db, Employee(), "FamMembers", Person(), /*set_valued=*/true));
  // Footnote 9: Dependents of Employee, Retirees of Company.
  XSQL_RETURN_IF_ERROR(
      Attr(db, Employee(), "Dependents", Person(), /*set_valued=*/true));

  XSQL_RETURN_IF_ERROR(Attr(db, Company(), "Name", str));
  XSQL_RETURN_IF_ERROR(Attr(db, Company(), "Headquarters", Address()));
  XSQL_RETURN_IF_ERROR(
      Attr(db, Company(), "Divisions", Division(), /*set_valued=*/true));
  // §6.2 (18): President : Company => Person; (20) adds a second type
  // expression Organization => Person via a declaration on Organization.
  XSQL_RETURN_IF_ERROR(Attr(db, Company(), "President", Person()));
  XSQL_RETURN_IF_ERROR(Attr(db, Organization(), "President", Person()));
  XSQL_RETURN_IF_ERROR(
      Attr(db, Company(), "Retirees", Person(), /*set_valued=*/true));

  XSQL_RETURN_IF_ERROR(Attr(db, Division(), "Name", str));
  XSQL_RETURN_IF_ERROR(Attr(db, Division(), "Location", Address()));
  XSQL_RETURN_IF_ERROR(Attr(db, Division(), "Function", str));
  XSQL_RETURN_IF_ERROR(Attr(db, Division(), "Manager", Employee()));
  XSQL_RETURN_IF_ERROR(
      Attr(db, Division(), "Employees", Employee(), /*set_valued=*/true));

  XSQL_RETURN_IF_ERROR(Attr(db, Address(), "Street", str));
  XSQL_RETURN_IF_ERROR(Attr(db, Address(), "City", str));
  XSQL_RETURN_IF_ERROR(Attr(db, Address(), "State", str));
  XSQL_RETURN_IF_ERROR(Attr(db, Address(), "Phone", num));

  XSQL_RETURN_IF_ERROR(
      Attr(db, VehicleDrivetrain(), "Engine", PistonEngine()));
  XSQL_RETURN_IF_ERROR(Attr(db, VehicleDrivetrain(), "Transmission", str));

  XSQL_RETURN_IF_ERROR(Attr(db, AutoBody(), "Chassis", str));
  XSQL_RETURN_IF_ERROR(Attr(db, AutoBody(), "Interior", str));
  XSQL_RETURN_IF_ERROR(Attr(db, AutoBody(), "Doors", num));

  XSQL_RETURN_IF_ERROR(Attr(db, PistonEngine(), "HPpower", num));
  XSQL_RETURN_IF_ERROR(Attr(db, PistonEngine(), "CCsize", num));
  XSQL_RETURN_IF_ERROR(Attr(db, PistonEngine(), "CylinderN", num));

  // §6.2 (19): Member : Association, Numeral => Organization.
  Signature member;
  member.method = Oid::Atom("Member");
  member.args = {num};
  member.result = Organization();
  XSQL_RETURN_IF_ERROR(db->DeclareSignature(Association(), member));

  return Status::OK();
}

Status BuildNobelSchema(Database* db) {
  const Oid str = builtin::String();
  const Oid person = fig1::Person();
  const Oid organization = fig1::Organization();
  if (!db->graph().IsClass(person)) {
    XSQL_RETURN_IF_ERROR(db->DeclareClass(person));
  }
  if (!db->graph().IsClass(organization)) {
    XSQL_RETURN_IF_ERROR(db->DeclareClass(organization));
  }
  XSQL_RETURN_IF_ERROR(db->DeclareClass(Oid::Atom("Scientist"), {person}));
  XSQL_RETURN_IF_ERROR(
      db->DeclareClass(Oid::Atom("CharityOrg"), {organization}));
  XSQL_RETURN_IF_ERROR(db->DeclareAttribute(
      Oid::Atom("Scientist"), Oid::Atom("WonNobelPrize"), str,
      /*set_valued=*/true));
  XSQL_RETURN_IF_ERROR(db->DeclareAttribute(
      Oid::Atom("CharityOrg"), Oid::Atom("WonNobelPrize"), str,
      /*set_valued=*/true));
  return Status::OK();
}

}  // namespace workload
}  // namespace xsql
