#include "workload/university.h"

#include <string>

#include "store/catalog.h"

namespace xsql {
namespace workload {

namespace {

Oid A(const std::string& s) { return Oid::Atom(s); }
Oid S(const std::string& s) { return Oid::String(s); }

Status BuildSchema(Session* session) {
  Database* db = &session->db();
  const Oid str = builtin::String();
  const Oid num = builtin::Numeral();

  XSQL_RETURN_IF_ERROR(db->DeclareClass(A("Person")));
  XSQL_RETURN_IF_ERROR(db->DeclareClass(A("Student"), {A("Person")}));
  XSQL_RETURN_IF_ERROR(db->DeclareClass(A("Employee"), {A("Person")}));
  // §6.1's diamond: Workstudy under both Student and Employee.
  XSQL_RETURN_IF_ERROR(
      db->DeclareClass(A("Workstudy"), {A("Student"), A("Employee")}));
  XSQL_RETURN_IF_ERROR(db->DeclareClass(A("Department")));
  XSQL_RETURN_IF_ERROR(db->DeclareClass(A("Course")));
  XSQL_RETURN_IF_ERROR(db->DeclareClass(A("Project")));
  XSQL_RETURN_IF_ERROR(db->DeclareClass(A("Grade")));
  XSQL_RETURN_IF_ERROR(db->DeclareClass(A("Pay")));
  XSQL_RETURN_IF_ERROR(db->DeclareClass(A("Semester")));
  XSQL_RETURN_IF_ERROR(db->DeclareClass(A("GradeRecord")));
  XSQL_RETURN_IF_ERROR(db->DeclareClass(A("PayRecord")));
  XSQL_RETURN_IF_ERROR(db->DeclareClass(A("WorkstudyRecord")));

  XSQL_RETURN_IF_ERROR(db->DeclareAttribute(A("Person"), A("Name"), str,
                                            false));
  XSQL_RETURN_IF_ERROR(db->DeclareAttribute(A("Person"), A("Age"), num,
                                            false));
  XSQL_RETURN_IF_ERROR(db->DeclareAttribute(A("Student"), A("Enrolled"),
                                            A("Course"), true));
  XSQL_RETURN_IF_ERROR(db->DeclareAttribute(
      A("Student"), A("GradeRecords"), A("GradeRecord"), true));
  XSQL_RETURN_IF_ERROR(db->DeclareAttribute(A("Employee"), A("Salary"), num,
                                            false));
  XSQL_RETURN_IF_ERROR(db->DeclareAttribute(A("Employee"), A("PayRecords"),
                                            A("PayRecord"), true));
  XSQL_RETURN_IF_ERROR(db->DeclareAttribute(A("Department"), A("Name"), str,
                                            false));
  XSQL_RETURN_IF_ERROR(db->DeclareAttribute(
      A("Department"), A("WSRecords"), A("WorkstudyRecord"), true));
  XSQL_RETURN_IF_ERROR(db->DeclareAttribute(A("Course"), A("Title"), str,
                                            false));
  XSQL_RETURN_IF_ERROR(db->DeclareAttribute(A("Course"), A("Credits"), num,
                                            false));
  XSQL_RETURN_IF_ERROR(db->DeclareAttribute(A("Project"), A("Title"), str,
                                            false));
  XSQL_RETURN_IF_ERROR(db->DeclareAttribute(A("Project"), A("Budget"), num,
                                            false));
  XSQL_RETURN_IF_ERROR(db->DeclareAttribute(A("Grade"), A("Value"), num,
                                            false));
  XSQL_RETURN_IF_ERROR(db->DeclareAttribute(A("Pay"), A("Value"), num,
                                            false));
  XSQL_RETURN_IF_ERROR(db->DeclareAttribute(A("GradeRecord"), A("Course"),
                                            A("Course"), false));
  XSQL_RETURN_IF_ERROR(db->DeclareAttribute(A("GradeRecord"), A("Grade"),
                                            A("Grade"), false));
  XSQL_RETURN_IF_ERROR(db->DeclareAttribute(A("PayRecord"), A("Project"),
                                            A("Project"), false));
  XSQL_RETURN_IF_ERROR(db->DeclareAttribute(A("PayRecord"), A("Pay"),
                                            A("Pay"), false));
  XSQL_RETURN_IF_ERROR(db->DeclareAttribute(A("WorkstudyRecord"),
                                            A("Semester"), A("Semester"),
                                            false));
  XSQL_RETURN_IF_ERROR(db->DeclareAttribute(A("WorkstudyRecord"),
                                            A("Member"), A("Workstudy"),
                                            false));

  // The paper's polymorphic earns, defined through the language itself.
  XSQL_RETURN_IF_ERROR(
      session->Execute("ALTER CLASS Student "
                       "ADD SIGNATURE earns : Course => Grade "
                       "SELECT (earns @ C) = G FROM Student X OID X "
                       "WHERE X.GradeRecords[R] and R.Course[C] "
                       "and R.Grade[G]")
          .status());
  XSQL_RETURN_IF_ERROR(
      session->Execute("ALTER CLASS Employee "
                       "ADD SIGNATURE earns : Project => Pay "
                       "SELECT (earns @ P) = W FROM Employee X OID X "
                       "WHERE X.PayRecords[R] and R.Project[P] "
                       "and R.Pay[W]")
          .status());
  // [MEY88]: Workstudy resolves the behavioral diamond explicitly — by
  // redefining earns to dispatch on the argument (structural
  // inheritance keeps BOTH signatures regardless, §6.1).
  XSQL_RETURN_IF_ERROR(
      session->Execute("ALTER CLASS Workstudy "
                       "SELECT (earns @ Arg) = V FROM Workstudy X OID X "
                       "WHERE (X.GradeRecords[R] and R.Course[Arg] "
                       "       and R.Grade[V]) "
                       "or (X.PayRecords[R2] and R2.Project[Arg] "
                       "    and R2.Pay[V])")
          .status());
  // §2's combined signature, expanded by the parser into two:
  // workstudy : Semester =>> {Student, Employee}.
  XSQL_RETURN_IF_ERROR(
      session->Execute("ALTER CLASS Department "
                       "ADD SIGNATURE workstudy : Semester =>> "
                       "{Student, Employee} "
                       "SELECT (workstudy @ Sem) = M FROM Department X "
                       "OID X "
                       "WHERE X.WSRecords[R] and R.Semester[Sem] "
                       "and R.Member[M]")
          .status());
  return Status::OK();
}

Status BuildData(Database* db) {
  // Semesters, courses, projects.
  for (const char* sem : {"fall2026", "spring2027"}) {
    XSQL_RETURN_IF_ERROR(db->NewObject(A(sem), {A("Semester")}));
  }
  struct CourseSpec {
    const char* oid;
    const char* title;
    int credits;
  };
  for (const CourseSpec& c : {CourseSpec{"cs101", "databases", 4},
                              CourseSpec{"cs202", "logic", 3},
                              CourseSpec{"cs303", "objects", 3}}) {
    XSQL_RETURN_IF_ERROR(db->NewObject(A(c.oid), {A("Course")}));
    XSQL_RETURN_IF_ERROR(db->SetScalar(A(c.oid), A("Title"), S(c.title)));
    XSQL_RETURN_IF_ERROR(
        db->SetScalar(A(c.oid), A("Credits"), Oid::Int(c.credits)));
  }
  for (const char* p : {"proj_orion", "proj_lyra"}) {
    XSQL_RETURN_IF_ERROR(db->NewObject(A(p), {A("Project")}));
    XSQL_RETURN_IF_ERROR(db->SetScalar(A(p), A("Title"), S(p)));
    XSQL_RETURN_IF_ERROR(
        db->SetScalar(A(p), A("Budget"), Oid::Int(100000)));
  }

  // Grades and pays as first-class objects.
  auto make_grade = [db](const std::string& oid, int value) -> Status {
    XSQL_RETURN_IF_ERROR(db->NewObject(A(oid), {A("Grade")}));
    return db->SetScalar(A(oid), A("Value"), Oid::Int(value));
  };
  auto make_pay = [db](const std::string& oid, int value) -> Status {
    XSQL_RETURN_IF_ERROR(db->NewObject(A(oid), {A("Pay")}));
    return db->SetScalar(A(oid), A("Value"), Oid::Int(value));
  };

  // A plain student with one grade.
  XSQL_RETURN_IF_ERROR(db->NewObject(A("alice"), {A("Student")}));
  XSQL_RETURN_IF_ERROR(db->SetScalar(A("alice"), A("Name"), S("alice")));
  XSQL_RETURN_IF_ERROR(make_grade("grade_a", 95));
  XSQL_RETURN_IF_ERROR(db->NewObject(A("gr_alice"), {A("GradeRecord")}));
  XSQL_RETURN_IF_ERROR(db->SetScalar(A("gr_alice"), A("Course"), A("cs101")));
  XSQL_RETURN_IF_ERROR(db->SetScalar(A("gr_alice"), A("Grade"), A("grade_a")));
  XSQL_RETURN_IF_ERROR(db->AddToSet(A("alice"), A("GradeRecords"),
                                    A("gr_alice")));

  // A plain employee with one pay record.
  XSQL_RETURN_IF_ERROR(db->NewObject(A("bob"), {A("Employee")}));
  XSQL_RETURN_IF_ERROR(db->SetScalar(A("bob"), A("Name"), S("bob")));
  XSQL_RETURN_IF_ERROR(db->SetScalar(A("bob"), A("Salary"), Oid::Int(80000)));
  XSQL_RETURN_IF_ERROR(make_pay("pay_b", 5000));
  XSQL_RETURN_IF_ERROR(db->NewObject(A("pr_bob"), {A("PayRecord")}));
  XSQL_RETURN_IF_ERROR(
      db->SetScalar(A("pr_bob"), A("Project"), A("proj_orion")));
  XSQL_RETURN_IF_ERROR(db->SetScalar(A("pr_bob"), A("Pay"), A("pay_b")));
  XSQL_RETURN_IF_ERROR(db->AddToSet(A("bob"), A("PayRecords"), A("pr_bob")));

  // carol: the §6.1 workstudy — earns a grade in cs202 and a pay on
  // proj_lyra, through ONE polymorphic method.
  XSQL_RETURN_IF_ERROR(db->NewObject(A("carol"), {A("Workstudy")}));
  XSQL_RETURN_IF_ERROR(db->SetScalar(A("carol"), A("Name"), S("carol")));
  XSQL_RETURN_IF_ERROR(
      db->SetScalar(A("carol"), A("Salary"), Oid::Int(20000)));
  XSQL_RETURN_IF_ERROR(make_grade("grade_c", 88));
  XSQL_RETURN_IF_ERROR(db->NewObject(A("gr_carol"), {A("GradeRecord")}));
  XSQL_RETURN_IF_ERROR(db->SetScalar(A("gr_carol"), A("Course"), A("cs202")));
  XSQL_RETURN_IF_ERROR(db->SetScalar(A("gr_carol"), A("Grade"), A("grade_c")));
  XSQL_RETURN_IF_ERROR(db->AddToSet(A("carol"), A("GradeRecords"),
                                    A("gr_carol")));
  XSQL_RETURN_IF_ERROR(make_pay("pay_c", 1500));
  XSQL_RETURN_IF_ERROR(db->NewObject(A("pr_carol"), {A("PayRecord")}));
  XSQL_RETURN_IF_ERROR(
      db->SetScalar(A("pr_carol"), A("Project"), A("proj_lyra")));
  XSQL_RETURN_IF_ERROR(db->SetScalar(A("pr_carol"), A("Pay"), A("pay_c")));
  XSQL_RETURN_IF_ERROR(db->AddToSet(A("carol"), A("PayRecords"),
                                    A("pr_carol")));

  // The department employing carol as workstudy in fall2026.
  XSQL_RETURN_IF_ERROR(db->NewObject(A("cs_dept"), {A("Department")}));
  XSQL_RETURN_IF_ERROR(db->SetScalar(A("cs_dept"), A("Name"), S("cs")));
  XSQL_RETURN_IF_ERROR(db->NewObject(A("ws_carol"), {A("WorkstudyRecord")}));
  XSQL_RETURN_IF_ERROR(
      db->SetScalar(A("ws_carol"), A("Semester"), A("fall2026")));
  XSQL_RETURN_IF_ERROR(db->SetScalar(A("ws_carol"), A("Member"), A("carol")));
  XSQL_RETURN_IF_ERROR(db->AddToSet(A("cs_dept"), A("WSRecords"),
                                    A("ws_carol")));
  return Status::OK();
}

}  // namespace

Status BuildUniversity(Session* session) {
  XSQL_RETURN_IF_ERROR(BuildSchema(session));
  return BuildData(&session->db());
}

}  // namespace workload
}  // namespace xsql
