#ifndef XSQL_WORKLOAD_UNIVERSITY_H_
#define XSQL_WORKLOAD_UNIVERSITY_H_

#include "common/status.h"
#include "eval/session.h"
#include "store/database.h"

namespace xsql {
namespace workload {

/// The paper's *other* running domain: the university of §2 and §6.1.
///
/// Installs, schema-side:
///  * Student and Employee under Person, and Workstudy under both —
///    the multiple-inheritance diamond of §6.1;
///  * the polymorphic method `earns` with the paper's two signatures,
///    `earns : Course => Grade` (Student) and `earns : Project => Pay`
///    (Employee), structurally inherited *together* by Workstudy;
///  * the §2 combined signature `workstudy : Semester =>> {Student,
///    Employee}` on Department (expanded to two signatures);
///  * query-defined bodies for both `earns` definitions, and — the
///    [MEY88] explicit resolution the paper adopts — a redefinition of
///    `earns` on Workstudy that dispatches on the argument: grade
///    records answer courses, pay records answer projects.
///
/// Data-side: departments, courses, projects, students with grade
/// records, employees with pay records, and workstudy individuals
/// carrying both.
Status BuildUniversity(Session* session);

}  // namespace workload
}  // namespace xsql

#endif  // XSQL_WORKLOAD_UNIVERSITY_H_
