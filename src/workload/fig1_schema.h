#ifndef XSQL_WORKLOAD_FIG1_SCHEMA_H_
#define XSQL_WORKLOAD_FIG1_SCHEMA_H_

#include "common/status.h"
#include "oid/oid.h"
#include "store/database.h"

namespace xsql {
namespace workload {

/// Installs the paper's Figure 1 schema: the Vehicle/Person/Company
/// composition hierarchy, the engine IS-A chain (TurboEngine and
/// DieselEngine under FourStrokeEngine under PistonEngine — so that
/// query (4) returns exactly {FourStrokeEngine, PistonEngine, Object}),
/// plus the classes and attributes the running examples add outside the
/// figure: Company.Retirees*, Employee.Dependents* (footnote 9),
/// Organization above Company with its own President signature and the
/// Association class with the Member method (§6.2 fragments (19)/(20)).
Status BuildFig1Schema(Database* db);

/// Installs the introduction's Nobel-prize mini schema on top of a
/// database: Scientist under Person and CharityOrg under Organization,
/// each declaring WonNobelPrize =>> String. Winners are *not* all in
/// one class — the point of the example.
Status BuildNobelSchema(Database* db);

/// Well-known class oids of the Figure 1 schema.
namespace fig1 {
Oid Vehicle();
Oid Motorbike();
Oid Bicycle();
Oid Automobile();
Oid Person();
Oid Employee();
Oid Company();
Oid Division();
Oid Address();
Oid VehicleDrivetrain();
Oid AutoBody();
Oid PistonEngine();
Oid TwoStrokeEngine();
Oid FourStrokeEngine();
Oid TurboEngine();
Oid DieselEngine();
Oid Organization();
Oid Association();
}  // namespace fig1

}  // namespace workload
}  // namespace xsql

#endif  // XSQL_WORKLOAD_FIG1_SCHEMA_H_
