#ifndef XSQL_WORKLOAD_GENERATOR_H_
#define XSQL_WORKLOAD_GENERATOR_H_

#include "common/rng.h"
#include "common/status.h"
#include "store/database.h"

namespace xsql {
namespace workload {

/// Size and shape of a synthetic Figure-1 instance. Defaults produce a
/// small database suitable for tests; benchmarks sweep `scale`.
struct WorkloadParams {
  uint64_t seed = 42;
  size_t companies = 5;
  size_t divisions_per_company = 3;
  size_t employees_per_division = 4;
  size_t extra_persons = 10;   // persons who are not employees
  size_t automobiles = 20;
  size_t max_family = 3;       // FamMembers per employee, 0..max
  size_t max_owned = 2;        // OwnedVehicles per person, 0..max
  /// Adds the named individuals the paper's examples rely on: mary123,
  /// _john13, the company uniSQL (with president and divisions) and the
  /// association OO_Forum.
  bool include_named_individuals = true;

  /// Multiplies the object counts uniformly.
  WorkloadParams Scaled(size_t factor) const {
    WorkloadParams p = *this;
    p.companies *= factor;
    p.automobiles *= factor;
    p.extra_persons *= factor;
    return p;
  }
};

/// Counters describing the generated instance.
struct WorkloadStats {
  size_t persons = 0;
  size_t employees = 0;
  size_t companies = 0;
  size_t divisions = 0;
  size_t automobiles = 0;
  size_t addresses = 0;
};

/// Populates a database (whose schema BuildFig1Schema installed) with a
/// deterministic synthetic instance. Cities include 'newyork' and
/// 'austin' so the paper's selection queries have non-trivial answers.
Result<WorkloadStats> GenerateFig1Data(Database* db,
                                       const WorkloadParams& params);

}  // namespace workload
}  // namespace xsql

#endif  // XSQL_WORKLOAD_GENERATOR_H_
