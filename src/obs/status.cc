#include "obs/status.h"

namespace xsql {
namespace obs {

StatusRegistry& StatusRegistry::Global() {
  static StatusRegistry* instance = new StatusRegistry();
  return *instance;
}

void StatusRegistry::Set(const std::string& key, const std::string& value) {
  std::lock_guard<std::mutex> lock(mu_);
  values_[key] = value;
}

void StatusRegistry::Set(const std::string& key, int64_t value) {
  Set(key, std::to_string(value));
}

void StatusRegistry::Clear(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  values_.erase(key);
}

std::vector<std::pair<std::string, std::string>> StatusRegistry::Snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return {values_.begin(), values_.end()};
}

std::string StatusRegistry::Get(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = values_.find(key);
  return it == values_.end() ? std::string() : it->second;
}

}  // namespace obs
}  // namespace xsql
