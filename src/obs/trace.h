#ifndef XSQL_OBS_TRACE_H_
#define XSQL_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace xsql {
namespace obs {

/// Aggregated statistics of one operator in the span tree. A node is
/// keyed by (name, detail) under its parent: re-entering the same
/// operator merges into the existing node (`count` ticks up, times and
/// rows accumulate), so the tree stays bounded by the number of
/// *distinct* operators no matter how many rows flow through them —
/// this is what makes EXPLAIN ANALYZE output readable on large inputs.
struct SpanNode {
  std::string name;
  std::string detail;
  uint64_t count = 0;      ///< times the span was entered
  uint64_t wall_ns = 0;    ///< cumulative wall time (includes children)
  uint64_t rows = 0;       ///< rows/bindings this operator produced
  uint64_t steps = 0;      ///< guard-budget steps charged inside the span
  uint64_t fault_checks = 0;  ///< fault-injection sites crossed (armed only)
  std::vector<std::unique_ptr<SpanNode>> children;

  SpanNode* FindOrAddChild(const char* child_name,
                           const std::string& child_detail);
};

/// Collects one statement's span tree. Not thread-safe: a tracer is
/// installed on one thread via ScopedTracer and records that thread's
/// spans only. Spans must nest (RAII guarantees it).
class Tracer {
 public:
  Tracer() {
    root_.name = "trace";
    stack_.push_back(&root_);
  }

  const SpanNode& root() const { return root_; }

  /// Renders the tree, two-space indent per level. With stats each line
  /// carries `calls/wall/rows/steps/faults` (zero fields omitted);
  /// without, only `name detail` — the timing-free form golden tests
  /// compare against.
  std::string Render(bool include_stats = true) const;

 private:
  friend class Span;
  friend class ScopedTracer;

  SpanNode root_;
  std::vector<SpanNode*> stack_;
};

/// The calling thread's active tracer, or null when tracing is off —
/// the single relaxed-cost check every Span constructor performs.
inline Tracer*& CurrentTracerSlot() {
  thread_local Tracer* current = nullptr;
  return current;
}
inline Tracer* CurrentTracer() { return CurrentTracerSlot(); }

/// Installs a tracer on this thread for a scope (EXPLAIN ANALYZE wraps
/// the traced execution in one); restores the previous tracer on exit,
/// so traced regions nest.
class ScopedTracer {
 public:
  explicit ScopedTracer(Tracer* tracer) : previous_(CurrentTracerSlot()) {
    CurrentTracerSlot() = tracer;
  }
  ~ScopedTracer() { CurrentTracerSlot() = previous_; }
  ScopedTracer(const ScopedTracer&) = delete;
  ScopedTracer& operator=(const ScopedTracer&) = delete;

 private:
  Tracer* previous_;
};

/// RAII span. With no tracer installed, construction is a thread-local
/// load and a branch and destruction one more branch — the "near zero
/// cost when no sink is attached" contract, benchmarked in B12. The
/// detail argument is a callable so the string is only built when a
/// tracer is listening.
class Span {
 public:
  explicit Span(const char* name) {
    if (CurrentTracer() != nullptr) Open(name, std::string());
  }
  template <typename DetailFn,
            typename = std::enable_if_t<std::is_invocable_v<DetailFn>>>
  Span(const char* name, DetailFn&& detail) {
    if (CurrentTracer() != nullptr) {
      Open(name, std::forward<DetailFn>(detail)());
    }
  }
  ~Span() {
    if (node_ != nullptr) Close();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return node_ != nullptr; }
  void AddRows(uint64_t n) {
    if (node_ != nullptr) node_->rows += n;
  }
  void AddSteps(uint64_t n) {
    if (node_ != nullptr) node_->steps += n;
  }

 private:
  void Open(const char* name, std::string detail);
  void Close();

  SpanNode* node_ = nullptr;
  Tracer* tracer_ = nullptr;
  std::chrono::steady_clock::time_point start_;
  uint64_t fault_checks_before_ = 0;
};

}  // namespace obs
}  // namespace xsql

#endif  // XSQL_OBS_TRACE_H_
