#ifndef XSQL_OBS_METRICS_H_
#define XSQL_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace xsql {
namespace obs {

/// Process-wide switch for metric recording. Checked with one relaxed
/// load on every update, so disabling really does freeze every value
/// (used by tests to prove instrumentation has no observable effect
/// beyond the metrics themselves).
inline std::atomic<bool>& MetricsEnabledFlag() {
  static std::atomic<bool> enabled{true};
  return enabled;
}
inline bool MetricsEnabled() {
  return MetricsEnabledFlag().load(std::memory_order_relaxed);
}
inline void SetMetricsEnabled(bool on) {
  MetricsEnabledFlag().store(on, std::memory_order_relaxed);
}

/// Monotonic counter. Updates are relaxed atomics — no lock, no fence;
/// readers get eventually-consistent totals, which is all a metrics
/// dump needs.
class Counter {
 public:
  void Inc(uint64_t n = 1) {
    if (MetricsEnabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous signed value (open handles, live sessions).
class Gauge {
 public:
  void Set(int64_t v) {
    if (MetricsEnabled()) value_.store(v, std::memory_order_relaxed);
  }
  void Add(int64_t n) {
    if (MetricsEnabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed log₂-bucket histogram: bucket i counts observations v with
/// 2^(i-1) < v ≤ 2^i - 1 rounded to bit width, i.e. `bit_width(v)`.
/// 64 buckets cover the whole uint64 range, so there is no overflow
/// bucket and no configuration — timers in microseconds span nanosecond
/// parses to multi-hour scans.
class Histogram {
 public:
  static constexpr int kBuckets = 65;  // bit_width(v) in [0, 64]

  void Observe(uint64_t v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Approximate quantile (q in [0,1]): upper bound of the bucket
  /// holding the q-th observation. Exact to within the 2× bucket width.
  uint64_t Quantile(double q) const;

  /// One coherent point-in-time sample (see HistogramSample). Dumps use
  /// this rather than the raw accessors so concurrently updating threads
  /// cannot make a single rendered histogram self-inconsistent.
  struct Sample;
  Sample TakeSample() const;

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> buckets_[kBuckets] = {};
};

/// A decoupled histogram sample with internally consistent fields:
/// `count` is *derived* from the sampled buckets (count == Σ buckets by
/// construction) and both quantiles are computed from the same bucket
/// array, so a dump taken mid-update never shows a p99 from a different
/// state than its p50 or a count the buckets cannot account for. `sum`
/// is read once and may trail the buckets by in-flight observations —
/// the one residual skew a lock-free histogram cannot close.
struct Histogram::Sample {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t buckets[kBuckets] = {};

  uint64_t Quantile(double q) const;
};

/// One metric's dumped state, decoupled from the live atomics.
struct MetricSample {
  std::string name;
  std::string type;  // "counter" | "gauge" | "histogram"
  /// counter/gauge: {("value", v)}.
  /// histogram: {("count", n), ("sum", s), ("p50", ..), ("p99", ..)}.
  std::vector<std::pair<std::string, int64_t>> fields;
};

/// Named-metric registry. Registration (GetCounter & co.) takes a mutex
/// but happens once per call site — the idiom is a namespace-scope
/// `static Counter& c = MetricsRegistry::Global().GetCounter(...)`, so
/// the hot path touches only the returned object's relaxed atomics.
/// Returned references are stable for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every subsystem registers into.
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// All metrics, sorted by name.
  std::vector<MetricSample> Snapshot() const;
  /// `name type field=value ...` — one line per metric, sorted.
  std::string ToText() const;
  /// One JSON object keyed by metric name; histograms carry their
  /// non-empty buckets as `{"bit_width": count}`.
  std::string ToJson() const;

 private:
  struct Entry {
    std::string type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> metrics_;
};

}  // namespace obs
}  // namespace xsql

#endif  // XSQL_OBS_METRICS_H_
