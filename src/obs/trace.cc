#include "obs/trace.h"

#include <cstdio>

#include "common/fault.h"

namespace xsql {
namespace obs {

namespace {

uint64_t TotalFaultChecks() {
  const FaultInjector& fi = FaultInjector::Global();
  return fi.checks(FaultInjector::Domain::kMutation) +
         fi.checks(FaultInjector::Domain::kGuard) +
         fi.checks(FaultInjector::Domain::kIo);
}

std::string FormatWall(uint64_t ns) {
  // Microseconds below 1 ms, milliseconds above; one decimal each.
  char buf[32];
  if (ns < 1000000) {
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fms", static_cast<double>(ns) / 1e6);
  }
  return buf;
}

void RenderNode(const SpanNode& node, int depth, bool include_stats,
                std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(node.name);
  if (!node.detail.empty()) {
    out->push_back(' ');
    out->append(node.detail);
  }
  if (include_stats) {
    out->append("  [calls=" + std::to_string(node.count));
    out->append(" wall=" + FormatWall(node.wall_ns));
    if (node.rows != 0) out->append(" rows=" + std::to_string(node.rows));
    if (node.steps != 0) out->append(" steps=" + std::to_string(node.steps));
    if (node.fault_checks != 0) {
      out->append(" faults=" + std::to_string(node.fault_checks));
    }
    out->push_back(']');
  }
  out->push_back('\n');
  for (const auto& child : node.children) {
    RenderNode(*child, depth + 1, include_stats, out);
  }
}

}  // namespace

SpanNode* SpanNode::FindOrAddChild(const char* child_name,
                                   const std::string& child_detail) {
  for (const auto& child : children) {
    if (child->name == child_name && child->detail == child_detail) {
      return child.get();
    }
  }
  children.push_back(std::make_unique<SpanNode>());
  SpanNode* node = children.back().get();
  node->name = child_name;
  node->detail = child_detail;
  return node;
}

std::string Tracer::Render(bool include_stats) const {
  std::string out;
  // The synthetic "trace" root is elided: render its children, the
  // statements actually traced.
  for (const auto& child : root_.children) {
    RenderNode(*child, 0, include_stats, &out);
  }
  return out;
}

void Span::Open(const char* name, std::string detail) {
  tracer_ = CurrentTracer();
  node_ = tracer_->stack_.back()->FindOrAddChild(name, detail);
  node_->count += 1;
  tracer_->stack_.push_back(node_);
  if (FaultInjector::Global().armed()) {
    fault_checks_before_ = TotalFaultChecks();
  }
  start_ = std::chrono::steady_clock::now();
}

void Span::Close() {
  node_->wall_ns += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
  if (FaultInjector::Global().armed()) {
    node_->fault_checks += TotalFaultChecks() - fault_checks_before_;
  }
  tracer_->stack_.pop_back();
}

}  // namespace obs
}  // namespace xsql
