#ifndef XSQL_OBS_STATUS_H_
#define XSQL_OBS_STATUS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace xsql {
namespace obs {

/// Key/value status board, the backing store of the `SYSTEM STATUS`
/// statement. Where the metrics registry accumulates *history*
/// (counters only go up), the status board holds *state*: role,
/// current generation, replication position, lag — values a failover
/// test or an operator reads as of now. Writers (the server, the
/// replica applier) Set keys as their state changes; `SYSTEM STATUS`
/// renders a sorted snapshot.
///
/// Each Server owns an instance (its sessions point at it via
/// SessionOptions::status); the process-global board serves embedded
/// library use.
class StatusRegistry {
 public:
  StatusRegistry() = default;

  static StatusRegistry& Global();

  void Set(const std::string& key, const std::string& value);
  void Set(const std::string& key, int64_t value);
  void Clear(const std::string& key);

  /// All keys and their values, sorted by key.
  std::vector<std::pair<std::string, std::string>> Snapshot() const;

  /// Reads one key ("" when absent) — handy for tests.
  std::string Get(const std::string& key) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::string> values_;
};

}  // namespace obs
}  // namespace xsql

#endif  // XSQL_OBS_STATUS_H_
