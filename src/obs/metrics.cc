#include "obs/metrics.h"

#include <bit>

namespace xsql {
namespace obs {

void Histogram::Observe(uint64_t v) {
  if (!MetricsEnabled()) return;
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  buckets_[std::bit_width(v)].fetch_add(1, std::memory_order_relaxed);
}

uint64_t Histogram::Sample::Quantile(double q) const {
  if (count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  uint64_t rank =
      static_cast<uint64_t>(q * static_cast<double>(count - 1)) + 1;
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      // Upper bound of bucket i: the largest value with bit_width i.
      return i == 0 ? 0 : (i >= 64 ? ~0ull : (1ull << i) - 1);
    }
  }
  return ~0ull;
}

Histogram::Sample Histogram::TakeSample() const {
  Sample s;
  // Buckets first; the count is derived from the copy, never from the
  // live (still advancing) count_, so count == Σ buckets holds for the
  // sample even while writer threads race this read.
  for (int i = 0; i < kBuckets; ++i) {
    s.buckets[i] = bucket(i);
    s.count += s.buckets[i];
  }
  s.sum = sum();
  return s;
}

uint64_t Histogram::Quantile(double q) const { return TakeSample().Quantile(q); }

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = metrics_[name];
  if (e.counter == nullptr) {
    e.type = "counter";
    e.counter = std::make_unique<Counter>();
  }
  return *e.counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = metrics_[name];
  if (e.gauge == nullptr) {
    e.type = "gauge";
    e.gauge = std::make_unique<Gauge>();
  }
  return *e.gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = metrics_[name];
  if (e.histogram == nullptr) {
    e.type = "histogram";
    e.histogram = std::make_unique<Histogram>();
  }
  return *e.histogram;
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(metrics_.size());
  for (const auto& [name, e] : metrics_) {
    MetricSample s;
    s.name = name;
    s.type = e.type;
    if (e.counter != nullptr) {
      s.fields.emplace_back("value", static_cast<int64_t>(e.counter->value()));
    } else if (e.gauge != nullptr) {
      s.fields.emplace_back("value", e.gauge->value());
    } else if (e.histogram != nullptr) {
      // One coherent sample per histogram: count/p50/p99 all derive from
      // the same bucket copy (see Histogram::TakeSample).
      Histogram::Sample sample = e.histogram->TakeSample();
      s.fields.emplace_back("count", static_cast<int64_t>(sample.count));
      s.fields.emplace_back("sum", static_cast<int64_t>(sample.sum));
      s.fields.emplace_back("p50",
                            static_cast<int64_t>(sample.Quantile(0.5)));
      s.fields.emplace_back("p99",
                            static_cast<int64_t>(sample.Quantile(0.99)));
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string MetricsRegistry::ToText() const {
  std::string out;
  for (const MetricSample& s : Snapshot()) {
    out += s.name + " " + s.type;
    for (const auto& [key, value] : s.fields) {
      out += " " + key + "=" + std::to_string(value);
    }
    out += "\n";
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  // Histogram buckets need the live objects, so re-walk under the lock
  // rather than going through Snapshot().
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n";
  bool first = true;
  for (const auto& [name, e] : metrics_) {
    if (!first) out += ",\n";
    first = false;
    out += "  \"" + name + "\": {\"type\": \"" + e.type + "\"";
    if (e.counter != nullptr) {
      out += ", \"value\": " + std::to_string(e.counter->value());
    } else if (e.gauge != nullptr) {
      out += ", \"value\": " + std::to_string(e.gauge->value());
    } else if (e.histogram != nullptr) {
      Histogram::Sample sample = e.histogram->TakeSample();
      out += ", \"count\": " + std::to_string(sample.count);
      out += ", \"sum\": " + std::to_string(sample.sum);
      out += ", \"p50\": " + std::to_string(sample.Quantile(0.5));
      out += ", \"p99\": " + std::to_string(sample.Quantile(0.99));
      out += ", \"buckets\": {";
      bool first_bucket = true;
      for (int i = 0; i < Histogram::kBuckets; ++i) {
        if (sample.buckets[i] == 0) continue;
        if (!first_bucket) out += ", ";
        first_bucket = false;
        out += "\"" + std::to_string(i) + "\": " +
               std::to_string(sample.buckets[i]);
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n}\n";
  return out;
}

}  // namespace obs
}  // namespace xsql
