#ifndef XSQL_FLOGIC_FLOGIC_EVAL_H_
#define XSQL_FLOGIC_FLOGIC_EVAL_H_

#include "common/exec_context.h"
#include "common/status.h"
#include "eval/relation.h"
#include "flogic/formula.h"
#include "store/database.h"

namespace xsql {
namespace flogic {

/// Model-checks an F-logic query against the database viewed as an
/// F-structure whose domain is the active domain (the standard finite
/// reading). Quantifiers range over the sort-appropriate universe:
/// individual variables over the active domain, class variables over
/// class-objects, method variables over method-objects.
///
/// This is deliberately the *naive* semantics — it is the referee for
/// Theorem 3.1: for any query q in the covered fragment,
/// `EvaluateFLogic(TranslateToFLogic(q))` must agree with the XSQL
/// evaluators.
/// `ctx` carries the execution guardrails (budgets, deadline,
/// cancellation, and the support-derivation depth policy); null means
/// unlimited.
Result<Relation> EvaluateFLogic(const FLogicQuery& query, Database* db,
                                ExecutionContext* ctx = nullptr);

}  // namespace flogic
}  // namespace xsql

#endif  // XSQL_FLOGIC_FLOGIC_EVAL_H_
