#include "flogic/formula.h"

namespace xsql {
namespace flogic {

std::string Atom::ToString() const {
  switch (kind) {
    case Kind::kData: {
      std::string out = obj.ToString() + "[" + method.ToString();
      if (!args.empty()) {
        out += " @ ";
        for (size_t i = 0; i < args.size(); ++i) {
          if (i > 0) out += ",";
          out += args[i].ToString();
        }
      }
      out += " ->> " + value.ToString() + "]";
      return out;
    }
    case Kind::kIsa:
      return obj.ToString() + " : " + value.ToString();
    case Kind::kSubclass:
      return obj.ToString() + " :: " + value.ToString();
    case Kind::kEquals:
      return obj.ToString() + " = " + value.ToString();
    case Kind::kComparison: {
      const char* op_str = op == CompOp::kLt   ? " < "
                           : op == CompOp::kLe ? " <= "
                           : op == CompOp::kGt ? " > "
                           : op == CompOp::kGe ? " >= "
                           : op == CompOp::kNe ? " != "
                                               : " = ";
      return obj.ToString() + op_str + value.ToString();
    }
  }
  return "?";
}

std::shared_ptr<Formula> Formula::Make(Atom a) {
  auto f = std::make_shared<Formula>();
  f->kind = Kind::kAtom;
  f->atom = std::move(a);
  return f;
}

std::shared_ptr<Formula> Formula::And(
    std::vector<std::shared_ptr<Formula>> children) {
  if (children.size() == 1) return children[0];
  auto f = std::make_shared<Formula>();
  f->kind = Kind::kAnd;
  f->children = std::move(children);
  return f;
}

std::shared_ptr<Formula> Formula::Or(
    std::vector<std::shared_ptr<Formula>> children) {
  if (children.size() == 1) return children[0];
  auto f = std::make_shared<Formula>();
  f->kind = Kind::kOr;
  f->children = std::move(children);
  return f;
}

std::shared_ptr<Formula> Formula::Not(std::shared_ptr<Formula> child) {
  auto f = std::make_shared<Formula>();
  f->kind = Kind::kNot;
  f->children.push_back(std::move(child));
  return f;
}

std::shared_ptr<Formula> Formula::Exists(Variable var,
                                         std::shared_ptr<Formula> child) {
  auto f = std::make_shared<Formula>();
  f->kind = Kind::kExists;
  f->var = std::move(var);
  f->children.push_back(std::move(child));
  return f;
}

std::shared_ptr<Formula> Formula::Forall(Variable var,
                                         std::shared_ptr<Formula> child) {
  auto f = std::make_shared<Formula>();
  f->kind = Kind::kForall;
  f->var = std::move(var);
  f->children.push_back(std::move(child));
  return f;
}

std::string Formula::ToString() const {
  switch (kind) {
    case Kind::kAtom:
      return atom.ToString();
    case Kind::kAnd:
    case Kind::kOr: {
      const char* sep = kind == Kind::kAnd ? " AND " : " OR ";
      std::string out = "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += sep;
        out += children[i]->ToString();
      }
      out += ")";
      return out;
    }
    case Kind::kNot:
      return "NOT (" + children[0]->ToString() + ")";
    case Kind::kExists:
      return "EXISTS " + var.ToString() + " (" + children[0]->ToString() +
             ")";
    case Kind::kForall:
      return "FORALL " + var.ToString() + " (" + children[0]->ToString() +
             ")";
  }
  return "?";
}

std::string FLogicQuery::ToString() const {
  std::string out = "?- {";
  for (size_t i = 0; i < answer_vars.size(); ++i) {
    if (i > 0) out += ", ";
    out += answer_vars[i].ToString();
  }
  out += "} : " + (body ? body->ToString() : std::string("true"));
  return out;
}

}  // namespace flogic
}  // namespace xsql
