#include "flogic/flogic_eval.h"

#include <functional>

#include "eval/binding.h"
#include "eval/comparator.h"
#include "eval/evaluator.h"
#include "store/catalog.h"

namespace xsql {
namespace flogic {

namespace {

class ModelChecker {
 public:
  ModelChecker(Database* db, ExecutionContext* ctx)
      : db_(db),
        ctx_(ctx != nullptr ? ctx : ExecutionContext::Unlimited()),
        evaluator_(db, nullptr, ctx_) {}

  Result<Relation> Run(const FLogicQuery& query) {
    std::vector<std::string> columns;
    for (const Variable& v : query.answer_vars) columns.push_back(v.name);
    Relation rel(columns);
    Binding binding;
    std::function<Status(size_t)> loop = [&](size_t idx) -> Status {
      if (idx == query.answer_vars.size()) {
        bool truth = true;
        if (query.body != nullptr) {
          XSQL_ASSIGN_OR_RETURN(truth, Eval(*query.body, &binding));
        }
        if (truth) {
          XSQL_RETURN_IF_ERROR(ctx_->ChargeRow());
          std::vector<Oid> row;
          for (const Variable& v : query.answer_vars) {
            row.push_back(binding.Get(v));
          }
          XSQL_RETURN_IF_ERROR(rel.AddRow(std::move(row)));
        }
        return Status::OK();
      }
      const Variable& var = query.answer_vars[idx];
      // Answer variables enjoy the same sound restriction: outside the
      // body's support the tuple cannot be an answer.
      std::optional<OidSet> support;
      if (query.body != nullptr) {
        support = ExistsSupport(*query.body, var, &binding, 0);
      }
      const OidSet& domain = support.has_value() ? *support : DomainFor(var);
      for (const Oid& candidate : domain) {
        XSQL_RETURN_IF_ERROR(ctx_->Step());
        BindScope scope(&binding, var, candidate);
        XSQL_RETURN_IF_ERROR(loop(idx + 1));
      }
      return Status::OK();
    };
    XSQL_RETURN_IF_ERROR(loop(0));
    return rel;
  }

 private:
  const OidSet& DomainFor(const Variable& var) {
    // Domains are fixed for the whole check; cache per sort — quantifier
    // nodes are evaluated inside nested loops.
    switch (var.sort) {
      case VarSort::kClass:
        if (!class_domain_.has_value()) {
          class_domain_ = db_->graph().Extent(builtin::MetaClass());
        }
        return *class_domain_;
      case VarSort::kMethod:
        if (!method_domain_.has_value()) {
          method_domain_ = db_->graph().Extent(builtin::MetaMethod());
        }
        return *method_domain_;
      default:
        return db_->ActiveDomain();
    }
  }

  /// True when the term evaluates under the current binding (no unbound
  /// variables), yielding its value.
  std::optional<Oid> TryEvalTerm(const IdTerm& term, const Binding& binding) {
    auto result = EvalTerm(term, binding);
    if (!result.ok()) return std::nullopt;
    return std::move(result).value();
  }

  /// A set R such that `formula` is false whenever `var` is bound
  /// outside R (all other free variables fixed by `binding`), or nullopt
  /// when no such set is syntactically derivable. Guards come from data
  /// molecules `o[m@.. ->> var]` and equalities `var = t` whose other
  /// parts are already bound; conjunction propagates any child's guard,
  /// disjunction needs (and unions) guards from every child, and an
  /// inner existential is handled by enumerating *its* (recursively
  /// restricted) support.
  std::optional<OidSet> ExistsSupport(const Formula& formula,
                                      const Variable& var, Binding* binding,
                                      int depth) {
    // Beyond the recursion-depth policy the derivation gives up and the
    // caller falls back to a full domain scan — sound, just slower.
    if (depth > static_cast<int>(ctx_->limits().max_recursion_depth)) {
      return std::nullopt;
    }
    switch (formula.kind) {
      case Formula::Kind::kAtom: {
        const Atom& atom = formula.atom;
        if (atom.kind == Atom::Kind::kData && atom.value.is_var() &&
            atom.value.var == var) {
          std::optional<Oid> obj = TryEvalTerm(atom.obj, *binding);
          std::optional<Oid> method = TryEvalTerm(atom.method, *binding);
          if (!obj || !method) return std::nullopt;
          std::vector<Oid> args;
          for (const IdTerm& a : atom.args) {
            std::optional<Oid> value = TryEvalTerm(a, *binding);
            if (!value) return std::nullopt;
            args.push_back(std::move(*value));
          }
          auto result = evaluator_.Invoke(*obj, *method, args);
          if (!result.ok()) return std::nullopt;
          return std::move(result).value();
        }
        if (atom.kind == Atom::Kind::kIsa && atom.obj.is_var() &&
            atom.obj.var == var) {
          std::optional<Oid> cls = TryEvalTerm(atom.value, *binding);
          if (cls) return db_->Extent(*cls);
        }
        if (atom.kind == Atom::Kind::kEquals ||
            (atom.kind == Atom::Kind::kComparison &&
             atom.op == CompOp::kEq)) {
          for (const auto& [side, other] :
               {std::pair(&atom.obj, &atom.value),
                std::pair(&atom.value, &atom.obj)}) {
            if (side->is_var() && side->var == var) {
              std::optional<Oid> value = TryEvalTerm(*other, *binding);
              if (value) {
                OidSet s;
                s.Insert(*value);
                return s;
              }
            }
          }
        }
        return std::nullopt;
      }
      case Formula::Kind::kAnd:
        for (const auto& child : formula.children) {
          std::optional<OidSet> support =
              ExistsSupport(*child, var, binding, depth + 1);
          if (support.has_value()) return support;
        }
        return std::nullopt;
      case Formula::Kind::kOr: {
        OidSet out;
        for (const auto& child : formula.children) {
          std::optional<OidSet> support =
              ExistsSupport(*child, var, binding, depth + 1);
          if (!support.has_value()) return std::nullopt;
          out = OidSet::Union(out, *support);
        }
        return out;
      }
      case Formula::Kind::kExists: {
        if (formula.var == var) return std::nullopt;  // shadowed
        // A guard that does not mention the inner variable restricts
        // var directly (guards mentioning it fail TryEvalTerm while the
        // inner variable is unbound, so this is sound).
        std::optional<OidSet> direct =
            ExistsSupport(*formula.children[0], var, binding, depth + 1);
        if (direct.has_value()) return direct;
        std::optional<OidSet> inner =
            ExistsSupport(*formula.children[0], formula.var, binding,
                          depth + 1);
        if (!inner.has_value()) return std::nullopt;
        OidSet out;
        for (const Oid& v : *inner) {
          BindScope scope(binding, formula.var, v);
          std::optional<OidSet> support =
              ExistsSupport(*formula.children[0], var, binding, depth + 1);
          if (!support.has_value()) return std::nullopt;
          out = OidSet::Union(out, *support);
        }
        return out;
      }
      default:
        return std::nullopt;
    }
  }

  /// Dual: a set R such that `formula` is true whenever `var` falls
  /// outside R. Our translation produces guarded implications
  /// Or(Not(guard), body): outside the guard's support the implication
  /// is vacuously true.
  std::optional<OidSet> ForallSupport(const Formula& formula,
                                      const Variable& var,
                                      Binding* binding) {
    if (formula.kind == Formula::Kind::kNot) {
      return ExistsSupport(*formula.children[0], var, binding, 0);
    }
    if (formula.kind == Formula::Kind::kOr) {
      for (const auto& child : formula.children) {
        if (child->kind == Formula::Kind::kNot) {
          std::optional<OidSet> support =
              ExistsSupport(*child->children[0], var, binding, 0);
          if (support.has_value()) return support;
        }
      }
    }
    return std::nullopt;
  }

  std::optional<OidSet> class_domain_;
  std::optional<OidSet> method_domain_;

  Result<Oid> EvalTerm(const IdTerm& term, const Binding& binding) {
    switch (term.kind) {
      case IdTerm::Kind::kConst:
        return term.value;
      case IdTerm::Kind::kVar:
        if (!binding.Bound(term.var)) {
          return Status::RuntimeError("unbound variable " +
                                      term.var.ToString());
        }
        return binding.Get(term.var);
      case IdTerm::Kind::kApply: {
        std::vector<Oid> args;
        for (const IdTerm& a : term.args) {
          XSQL_ASSIGN_OR_RETURN(Oid value, EvalTerm(a, binding));
          args.push_back(std::move(value));
        }
        return Oid::Term(term.fn, std::move(args));
      }
      case IdTerm::Kind::kNameRef:
        return Status::RuntimeError("unresolved name in formula");
    }
    return Status::RuntimeError("bad term");
  }

  Result<bool> EvalAtom(const Atom& atom, const Binding& binding) {
    switch (atom.kind) {
      case Atom::Kind::kData: {
        XSQL_ASSIGN_OR_RETURN(Oid obj, EvalTerm(atom.obj, binding));
        XSQL_ASSIGN_OR_RETURN(Oid method, EvalTerm(atom.method, binding));
        std::vector<Oid> args;
        for (const IdTerm& a : atom.args) {
          XSQL_ASSIGN_OR_RETURN(Oid value, EvalTerm(a, binding));
          args.push_back(std::move(value));
        }
        XSQL_ASSIGN_OR_RETURN(Oid value, EvalTerm(atom.value, binding));
        XSQL_ASSIGN_OR_RETURN(OidSet result,
                              evaluator_.Invoke(obj, method, args));
        return result.Contains(value);
      }
      case Atom::Kind::kIsa: {
        XSQL_ASSIGN_OR_RETURN(Oid obj, EvalTerm(atom.obj, binding));
        XSQL_ASSIGN_OR_RETURN(Oid cls, EvalTerm(atom.value, binding));
        return db_->IsInstanceOf(obj, cls);
      }
      case Atom::Kind::kSubclass: {
        XSQL_ASSIGN_OR_RETURN(Oid sub, EvalTerm(atom.obj, binding));
        XSQL_ASSIGN_OR_RETURN(Oid super, EvalTerm(atom.value, binding));
        return db_->graph().IsStrictSubclass(sub, super);
      }
      case Atom::Kind::kEquals: {
        XSQL_ASSIGN_OR_RETURN(Oid lhs, EvalTerm(atom.obj, binding));
        XSQL_ASSIGN_OR_RETURN(Oid rhs, EvalTerm(atom.value, binding));
        return lhs == rhs;
      }
      case Atom::Kind::kComparison: {
        XSQL_ASSIGN_OR_RETURN(Oid lhs, EvalTerm(atom.obj, binding));
        XSQL_ASSIGN_OR_RETURN(Oid rhs, EvalTerm(atom.value, binding));
        return OidsRelate(lhs, atom.op, rhs);
      }
    }
    return Status::RuntimeError("bad atom");
  }

  Result<bool> Eval(const Formula& formula, Binding* binding) {
    switch (formula.kind) {
      case Formula::Kind::kAtom:
        return EvalAtom(formula.atom, *binding);
      case Formula::Kind::kAnd:
        for (const auto& child : formula.children) {
          XSQL_ASSIGN_OR_RETURN(bool truth, Eval(*child, binding));
          if (!truth) return false;
        }
        return true;
      case Formula::Kind::kOr:
        for (const auto& child : formula.children) {
          XSQL_ASSIGN_OR_RETURN(bool truth, Eval(*child, binding));
          if (truth) return true;
        }
        return false;
      case Formula::Kind::kNot: {
        XSQL_ASSIGN_OR_RETURN(bool truth, Eval(*formula.children[0], binding));
        return !truth;
      }
      case Formula::Kind::kExists: {
        // Sound domain restriction: values outside the support make the
        // child false, so only the support needs scanning.
        std::optional<OidSet> support =
            ExistsSupport(*formula.children[0], formula.var, binding, 0);
        const OidSet& domain =
            support.has_value() ? *support : DomainFor(formula.var);
        for (const Oid& candidate : domain) {
          XSQL_RETURN_IF_ERROR(ctx_->Step());
          BindScope scope(binding, formula.var, candidate);
          XSQL_ASSIGN_OR_RETURN(bool truth,
                                Eval(*formula.children[0], binding));
          if (truth) return true;
        }
        return false;
      }
      case Formula::Kind::kForall: {
        // Dual restriction: values outside the support make the child
        // (an implication guarded by a reach formula) vacuously true.
        std::optional<OidSet> support =
            ForallSupport(*formula.children[0], formula.var, binding);
        const OidSet& domain =
            support.has_value() ? *support : DomainFor(formula.var);
        for (const Oid& candidate : domain) {
          XSQL_RETURN_IF_ERROR(ctx_->Step());
          BindScope scope(binding, formula.var, candidate);
          XSQL_ASSIGN_OR_RETURN(bool truth,
                                Eval(*formula.children[0], binding));
          if (!truth) return false;
        }
        return true;
      }
    }
    return Status::RuntimeError("bad formula");
  }

  Database* db_;
  ExecutionContext* ctx_;
  Evaluator evaluator_;
};

}  // namespace

Result<Relation> EvaluateFLogic(const FLogicQuery& query, Database* db,
                                ExecutionContext* ctx) {
  ModelChecker checker(db, ctx);
  return checker.Run(query);
}

}  // namespace flogic
}  // namespace xsql
