#ifndef XSQL_FLOGIC_FORMULA_H_
#define XSQL_FLOGIC_FORMULA_H_

#include <memory>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "oid/oid.h"

namespace xsql {
namespace flogic {

/// An atomic F-logic formula [KLW90].
///
/// `kData` is the data molecule `obj[mthd @ a1,...,ak -> v]`: the value
/// of method `mthd`, invoked on `obj` with the given arguments, includes
/// `v` (scalar methods: equals `v`). The method position is a term, so
/// "higher-order"-looking variables over method names stay first-order,
/// exactly the HiLog/F-logic trick the paper leans on. `kIsa` is `t : c`
/// (instance-of), `kSubclass` the *strict* `t :: c` the paper's
/// subclassOf denotes, `kEquals` term equality and `kComparison` the
/// built-in ordering predicates on numerals/strings.
struct Atom {
  enum class Kind : uint8_t { kData, kIsa, kSubclass, kEquals, kComparison };

  Kind kind = Kind::kData;
  IdTerm obj;                 // kData receiver; kIsa/kSubclass left term
  IdTerm method;              // kData method position (constant or variable)
  std::vector<IdTerm> args;   // kData arguments
  IdTerm value;               // kData value; kIsa/kSubclass right term;
                              // kEquals/kComparison right term
  CompOp op = CompOp::kEq;    // kComparison

  std::string ToString() const;
};

/// A first-order formula over atoms with the usual connectives and
/// sorted quantifiers.
struct Formula {
  enum class Kind : uint8_t { kAtom, kAnd, kOr, kNot, kExists, kForall };

  Kind kind = Kind::kAtom;
  Atom atom;                                        // kAtom
  std::vector<std::shared_ptr<Formula>> children;   // connectives (kNot: 1,
                                                    // quantifiers: 1)
  Variable var;                                     // quantifiers

  static std::shared_ptr<Formula> Make(Atom a);
  static std::shared_ptr<Formula> And(
      std::vector<std::shared_ptr<Formula>> children);
  static std::shared_ptr<Formula> Or(
      std::vector<std::shared_ptr<Formula>> children);
  static std::shared_ptr<Formula> Not(std::shared_ptr<Formula> child);
  static std::shared_ptr<Formula> Exists(Variable var,
                                         std::shared_ptr<Formula> child);
  static std::shared_ptr<Formula> Forall(Variable var,
                                         std::shared_ptr<Formula> child);

  std::string ToString() const;
};

/// A first-order F-logic query: distinguished answer variables plus a
/// body formula; its answers are the substitutions for the answer
/// variables making the body true in the database (viewed as an
/// F-structure over the active domain).
struct FLogicQuery {
  std::vector<Variable> answer_vars;
  std::shared_ptr<Formula> body;

  std::string ToString() const;
};

}  // namespace flogic
}  // namespace xsql

#endif  // XSQL_FLOGIC_FORMULA_H_
