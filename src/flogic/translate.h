#ifndef XSQL_FLOGIC_TRANSLATE_H_
#define XSQL_FLOGIC_TRANSLATE_H_

#include "ast/ast.h"
#include "common/status.h"
#include "flogic/formula.h"

namespace xsql {
namespace flogic {

/// Theorem 3.1's effective procedure `P`: translates an XSQL query of
/// the form considered in §3 and §5 — SELECT over variables and path
/// expressions, FROM, a WHERE clause built from path expressions,
/// quantified and set comparisons, subclassOf and Boolean connectives —
/// into an equivalent first-order F-logic query.
///
/// Constructs outside that form are rejected with Unimplemented:
/// aggregates and arithmetic (not first-order), subqueries (translate
/// them separately), OID FUNCTION object creation (§4 extends the data,
/// not just the answers), nested UPDATE, and path variables.
Result<FLogicQuery> TranslateToFLogic(const Query& query);

}  // namespace flogic
}  // namespace xsql

#endif  // XSQL_FLOGIC_TRANSLATE_H_
