#include "flogic/translate.h"

#include <functional>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace xsql {
namespace flogic {

namespace {

class Translator {
 public:
  Result<FLogicQuery> Run(const Query& query) {
    if (query.oid_function_of.has_value()) {
      return Status::Unimplemented(
          "P translates answer-producing queries; OID FUNCTION creates "
          "objects");
    }
    FLogicQuery out;
    std::vector<std::shared_ptr<Formula>> conjuncts;
    // FROM Cls X  ~~>  X : Cls.
    for (const FromEntry& entry : query.from) {
      Atom isa;
      isa.kind = Atom::Kind::kIsa;
      isa.obj = IdTerm::Var(entry.var);
      isa.value = entry.cls;
      conjuncts.push_back(Formula::Make(std::move(isa)));
    }
    // SELECT items become answer variables; a non-trivial path item gets
    // a fresh answer variable Z plus the conjunct "path reaches Z".
    for (const SelectItem& item : query.select) {
      if (item.kind != SelectItem::Kind::kExpr) {
        return Status::Unimplemented(
            "P translates plain SELECT items only");
      }
      const ValueExpr& expr = item.expr;
      if (expr.kind != ValueExpr::Kind::kPath) {
        return Status::Unimplemented(
            "aggregates/arithmetic/subqueries are outside the first-order "
            "fragment");
      }
      if (expr.path.trivial() && expr.path.head.is_var()) {
        out.answer_vars.push_back(expr.path.head.var);
        continue;
      }
      Variable answer = Fresh();
      out.answer_vars.push_back(answer);
      XSQL_ASSIGN_OR_RETURN(
          std::shared_ptr<Formula> reach,
          Reach(expr.path, IdTerm::Var(answer)));
      conjuncts.push_back(std::move(reach));
    }
    if (query.where != nullptr) {
      XSQL_ASSIGN_OR_RETURN(std::shared_ptr<Formula> where,
                            TranslateCondition(*query.where));
      conjuncts.push_back(std::move(where));
    }
    out.body = conjuncts.empty()
                   ? nullptr
                   : Formula::And(std::move(conjuncts));
    // Existentially close the free variables that are not answer
    // variables (the §3.4 semantics considers all substitutions; a
    // tuple is an answer if *some* extension satisfies the body).
    if (out.body != nullptr) {
      std::vector<Variable> free;
      CollectFreeVars(*out.body, {}, &free);
      for (auto it = free.rbegin(); it != free.rend(); ++it) {
        bool is_answer = false;
        for (const Variable& v : out.answer_vars) {
          if (v == *it) is_answer = true;
        }
        if (!is_answer) out.body = Formula::Exists(*it, std::move(out.body));
      }
    }
    return out;
  }

 private:
  Variable Fresh() {
    return Variable{"_f" + std::to_string(fresh_++), VarSort::kIndividual};
  }

  static void AddVar(const Variable& v, const std::vector<Variable>& bound,
                     std::vector<Variable>* out) {
    for (const Variable& b : bound) {
      if (b == v) return;
    }
    for (const Variable& have : *out) {
      if (have == v) return;
    }
    out->push_back(v);
  }

  static void CollectTermVars(const IdTerm& term,
                              const std::vector<Variable>& bound,
                              std::vector<Variable>* out) {
    if (term.is_var()) {
      AddVar(term.var, bound, out);
    } else if (term.is_apply()) {
      for (const IdTerm& a : term.args) CollectTermVars(a, bound, out);
    }
  }

  /// Free variables of a formula, in first-occurrence order.
  static void CollectFreeVars(const Formula& formula,
                              std::vector<Variable> bound,
                              std::vector<Variable>* out) {
    switch (formula.kind) {
      case Formula::Kind::kAtom: {
        const Atom& atom = formula.atom;
        CollectTermVars(atom.obj, bound, out);
        CollectTermVars(atom.method, bound, out);
        for (const IdTerm& a : atom.args) CollectTermVars(a, bound, out);
        CollectTermVars(atom.value, bound, out);
        break;
      }
      case Formula::Kind::kExists:
      case Formula::Kind::kForall:
        bound.push_back(formula.var);
        CollectFreeVars(*formula.children[0], bound, out);
        break;
      default:
        for (const auto& child : formula.children) {
          CollectFreeVars(*child, bound, out);
        }
        break;
    }
  }

  static std::shared_ptr<Formula> Implies(std::shared_ptr<Formula> a,
                                          std::shared_ptr<Formula> b) {
    return Formula::Or({Formula::Not(std::move(a)), std::move(b)});
  }

  /// Formula asserting that some database path satisfying `path` ends in
  /// the object denoted by `end`: one kData molecule per step, with
  /// fresh existential variables for the selector-less intermediate
  /// nodes — the §3.1 satisfaction definition written out in F-logic.
  Result<std::shared_ptr<Formula>> Reach(const PathExpr& path,
                                         const IdTerm& end) {
    if (path.trivial()) {
      Atom eq;
      eq.kind = Atom::Kind::kEquals;
      eq.obj = end;
      eq.value = path.head;
      return Formula::Make(std::move(eq));
    }
    std::vector<std::shared_ptr<Formula>> atoms;
    std::vector<Variable> existentials;
    IdTerm prev = path.head;
    for (size_t i = 0; i < path.steps.size(); ++i) {
      const PathStep& step = path.steps[i];
      if (step.kind == PathStep::Kind::kPathVar) {
        return Status::Unimplemented(
            "path variables are outside the first-order fragment P covers");
      }
      IdTerm node;
      if (i + 1 == path.steps.size()) {
        // The final node: use the declared selector if present (then tie
        // it to `end` with equality), otherwise `end` directly.
        if (step.selector.has_value()) {
          node = *step.selector;
          Atom eq;
          eq.kind = Atom::Kind::kEquals;
          eq.obj = end;
          eq.value = node;
          atoms.push_back(Formula::Make(std::move(eq)));
        } else {
          node = end;
        }
      } else if (step.selector.has_value()) {
        node = *step.selector;
      } else {
        Variable fresh = Fresh();
        existentials.push_back(fresh);
        node = IdTerm::Var(fresh);
      }
      Atom data;
      data.kind = Atom::Kind::kData;
      data.obj = prev;
      data.method = step.method.name_is_var
                        ? IdTerm::Var(step.method.name_var)
                        : IdTerm::Const(step.method.name);
      data.args = step.method.args;
      data.value = node;
      atoms.push_back(Formula::Make(std::move(data)));
      prev = node;
    }
    std::shared_ptr<Formula> body = Formula::And(std::move(atoms));
    for (auto it = existentials.rbegin(); it != existentials.rend(); ++it) {
      body = Formula::Exists(*it, std::move(body));
    }
    return body;
  }

  /// Builds "for the value set of `expr` under quantifier `q`, the
  /// property `inner(x)` holds", i.e. some-x, all-x or the-unique-x.
  Result<std::shared_ptr<Formula>> Quantify(
      const ValueExpr& expr, Quant q,
      const std::function<Result<std::shared_ptr<Formula>>(const IdTerm&)>&
          inner) {
    if (expr.kind == ValueExpr::Kind::kSetLiteral) {
      // A set literal's value is known syntactically: expand the
      // quantifier into a finite conjunction/disjunction.
      std::vector<std::shared_ptr<Formula>> parts;
      for (const ValueExpr& elem : expr.set_elems) {
        if (elem.kind != ValueExpr::Kind::kPath || !elem.path.trivial()) {
          return Status::Unimplemented(
              "set literals in the first-order fragment must list "
              "id-terms");
        }
        XSQL_ASSIGN_OR_RETURN(auto part, inner(elem.path.head));
        parts.push_back(std::move(part));
      }
      switch (q) {
        case Quant::kSome:
          return Formula::Or(std::move(parts));
        case Quant::kAll:
          return Formula::And(std::move(parts));
        case Quant::kNone:
          if (parts.size() != 1) {
            return Status::Unimplemented(
                "unquantified set literal must be a singleton");
          }
          return parts[0];
      }
    }
    if (expr.kind != ValueExpr::Kind::kPath) {
      return Status::Unimplemented(
          "aggregates/arithmetic/subqueries are outside the first-order "
          "fragment");
    }
    const PathExpr& path = expr.path;
    Variable x = Fresh();
    IdTerm xt = IdTerm::Var(x);
    XSQL_ASSIGN_OR_RETURN(std::shared_ptr<Formula> reach_x, Reach(path, xt));
    XSQL_ASSIGN_OR_RETURN(std::shared_ptr<Formula> prop, inner(xt));
    switch (q) {
      case Quant::kSome:
        return Formula::Exists(
            x, Formula::And({std::move(reach_x), std::move(prop)}));
      case Quant::kAll:
        return Formula::Forall(x,
                               Implies(std::move(reach_x), std::move(prop)));
      case Quant::kNone: {
        // Unquantified side: the value must be the singleton {x}.
        Variable z = Fresh();
        XSQL_ASSIGN_OR_RETURN(std::shared_ptr<Formula> reach_z,
                              Reach(path, IdTerm::Var(z)));
        Atom eq;
        eq.kind = Atom::Kind::kEquals;
        eq.obj = IdTerm::Var(z);
        eq.value = xt;
        std::shared_ptr<Formula> unique = Formula::Forall(
            z, Implies(std::move(reach_z), Formula::Make(std::move(eq))));
        return Formula::Exists(
            x, Formula::And(
                   {std::move(reach_x), std::move(unique), std::move(prop)}));
      }
    }
    return Status::RuntimeError("bad quantifier");
  }

  Result<std::shared_ptr<Formula>> TranslateComparison(const Condition& c) {
    return Quantify(c.lhs, c.lquant, [&](const IdTerm& x) {
      return Quantify(c.rhs, c.rquant,
                      [&](const IdTerm& y) -> Result<std::shared_ptr<Formula>> {
                        Atom cmp;
                        cmp.kind = c.comp_op == CompOp::kEq
                                       ? Atom::Kind::kEquals
                                       : Atom::Kind::kComparison;
                        cmp.op = c.comp_op;
                        cmp.obj = x;
                        cmp.value = y;
                        return Formula::Make(std::move(cmp));
                      });
    });
  }

  /// `every x reached by a is also reached by b`.
  Result<std::shared_ptr<Formula>> SubsetEq(const ValueExpr& a,
                                            const ValueExpr& b) {
    return Quantify(a, Quant::kAll, [&](const IdTerm& x) {
      // "b reaches x": exists y reached by b with y = x.
      return Quantify(b, Quant::kSome,
                      [&](const IdTerm& y) -> Result<std::shared_ptr<Formula>> {
                        Atom eq;
                        eq.kind = Atom::Kind::kEquals;
                        eq.obj = x;
                        eq.value = y;
                        return Formula::Make(std::move(eq));
                      });
    });
  }

  /// `some x reached by a is not reached by b` (proper-ness witness).
  Result<std::shared_ptr<Formula>> SomeNotIn(const ValueExpr& a,
                                             const ValueExpr& b) {
    return Quantify(a, Quant::kSome, [&](const IdTerm& x) {
      return Quantify(b, Quant::kAll,
                      [&](const IdTerm& y) -> Result<std::shared_ptr<Formula>> {
                        Atom ne;
                        ne.kind = Atom::Kind::kComparison;
                        ne.op = CompOp::kNe;
                        ne.obj = x;
                        ne.value = y;
                        return Formula::Make(std::move(ne));
                      });
    });
  }

  Result<std::shared_ptr<Formula>> TranslateSetComparison(
      const Condition& c) {
    switch (c.set_op) {
      case SetOp::kSubsetEq:
        return SubsetEq(c.lhs, c.rhs);
      case SetOp::kContainsEq:
        return SubsetEq(c.rhs, c.lhs);
      case SetOp::kSubset: {
        XSQL_ASSIGN_OR_RETURN(auto sub, SubsetEq(c.lhs, c.rhs));
        XSQL_ASSIGN_OR_RETURN(auto proper, SomeNotIn(c.rhs, c.lhs));
        return Formula::And({std::move(sub), std::move(proper)});
      }
      case SetOp::kContains: {
        XSQL_ASSIGN_OR_RETURN(auto sup, SubsetEq(c.rhs, c.lhs));
        XSQL_ASSIGN_OR_RETURN(auto proper, SomeNotIn(c.lhs, c.rhs));
        return Formula::And({std::move(sup), std::move(proper)});
      }
      case SetOp::kSetEq: {
        XSQL_ASSIGN_OR_RETURN(auto ab, SubsetEq(c.lhs, c.rhs));
        XSQL_ASSIGN_OR_RETURN(auto ba, SubsetEq(c.rhs, c.lhs));
        return Formula::And({std::move(ab), std::move(ba)});
      }
    }
    return Status::RuntimeError("bad set comparator");
  }

  Result<std::shared_ptr<Formula>> TranslateCondition(const Condition& c) {
    switch (c.kind) {
      case Condition::Kind::kAnd:
      case Condition::Kind::kOr: {
        std::vector<std::shared_ptr<Formula>> children;
        for (const auto& child : c.children) {
          XSQL_ASSIGN_OR_RETURN(auto f, TranslateCondition(*child));
          children.push_back(std::move(f));
        }
        return c.kind == Condition::Kind::kAnd
                   ? Formula::And(std::move(children))
                   : Formula::Or(std::move(children));
      }
      case Condition::Kind::kNot: {
        XSQL_ASSIGN_OR_RETURN(auto f, TranslateCondition(*c.children[0]));
        return Formula::Not(std::move(f));
      }
      case Condition::Kind::kComparison:
        return TranslateComparison(c);
      case Condition::Kind::kSetComparison:
        return TranslateSetComparison(c);
      case Condition::Kind::kStandalonePath: {
        Variable tail = Fresh();
        XSQL_ASSIGN_OR_RETURN(auto reach,
                              Reach(c.path, IdTerm::Var(tail)));
        return Formula::Exists(tail, std::move(reach));
      }
      case Condition::Kind::kSubclassOf: {
        Atom sub;
        sub.kind = Atom::Kind::kSubclass;
        sub.obj = c.sub;
        sub.value = c.super;
        return Formula::Make(std::move(sub));
      }
      case Condition::Kind::kApplicable:
        return Status::Unimplemented(
            "applicableTo queries the signature store, which P does not "
            "axiomatize");
      case Condition::Kind::kUpdate:
        return Status::Unimplemented(
            "nested UPDATE is outside the first-order fragment");
    }
    return Status::RuntimeError("bad condition");
  }

  int fresh_ = 0;
};

}  // namespace

Result<FLogicQuery> TranslateToFLogic(const Query& query) {
  static obs::Counter& translations =
      obs::MetricsRegistry::Global().GetCounter("xsql.flogic.translations");
  translations.Inc();
  obs::Span span("flogic/translate", [&] { return query.ToString(); });
  Translator translator;
  return translator.Run(query);
}

}  // namespace flogic
}  // namespace xsql
