#ifndef XSQL_STORE_METHOD_H_
#define XSQL_STORE_METHOD_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "oid/oid.h"
#include "store/class_graph.h"

namespace xsql {

/// Abstract body of a method implementation (§2 "Methods", §5).
///
/// The store does not know how to *run* a method — that is the
/// evaluator's job (query-defined bodies carry an AST, native bodies a
/// C++ function). Keeping the body abstract here avoids a dependency
/// cycle between the store substrate and the query layer while the
/// registry still owns behavioral-inheritance resolution.
class MethodBody {
 public:
  virtual ~MethodBody() = default;

  /// Number of explicit arguments (the receiver is the implicit 0th
  /// argument and is not counted, matching the paper's signatures).
  virtual int arity() const = 0;

  /// Whether invocations return a set (`=>>`) or a scalar (`=>`).
  virtual bool set_valued() const = 0;

  /// Human-readable tag for diagnostics ("native", "query", ...).
  virtual std::string kind() const = 0;
};

/// Per-class method definitions with behavioral inheritance (§2, §6.1).
///
/// A definition of method M on class C is inherited by every subclass of
/// C, and *overridden* by a redefinition in a subclass. Under multiple
/// inheritance, when two incomparable superclasses both supply a
/// definition, we follow the paper's adoption of [MEY88]: the schema must
/// resolve the conflict explicitly (`ResolveConflict`); otherwise
/// resolution reports a runtime error. Structural inheritance of
/// *signatures* is unaffected (handled by SignatureStore).
class MethodRegistry {
 public:
  /// Defines (or redefines) `method`/`arity` on `cls`.
  Status Define(const Oid& cls, const Oid& method, int arity,
                std::shared_ptr<const MethodBody> body);

  /// Declares that class `cls` inherits `method` from superclass
  /// `from_super` when multiple superclasses define it.
  Status ResolveConflict(const Oid& cls, const Oid& method,
                         const Oid& from_super);

  /// True if `method`/`arity` is defined directly on `cls`.
  bool DefinedOn(const Oid& cls, const Oid& method, int arity) const;

  /// Resolution result: the class whose definition applies plus the body.
  struct Resolution {
    Oid defining_class;
    std::shared_ptr<const MethodBody> body;
  };

  /// Resolves the definition of `method`/`arity` seen by an object whose
  /// direct classes are `classes`, walking the IS-A graph upward and
  /// applying overriding. NotFound if no definition is visible;
  /// RuntimeError on an unresolved multiple-inheritance conflict.
  Result<Resolution> Resolve(const ClassGraph& graph,
                             const std::vector<Oid>& classes,
                             const Oid& method, int arity) const;

  /// Convenience: resolve for a single class.
  Result<Resolution> ResolveForClass(const ClassGraph& graph, const Oid& cls,
                                     const Oid& method, int arity) const;

  /// The direct definition of `method`/`arity` on `cls`, or null.
  /// Undo support: captured before a Define overwrites it.
  std::shared_ptr<const MethodBody> Definition(const Oid& cls,
                                               const Oid& method,
                                               int arity) const;

  /// Undo primitive: reinstates `body` as the direct definition (erases
  /// the definition when `body` is null).
  void Restore(const Oid& cls, const Oid& method, int arity,
               std::shared_ptr<const MethodBody> body);

  /// The conflict-resolution choice recorded for (`cls`, `method`), if any.
  std::optional<Oid> ConflictChoice(const Oid& cls, const Oid& method) const;

  /// Undo primitive: reinstates (or erases, when nullopt) the
  /// conflict-resolution choice for (`cls`, `method`).
  void RestoreConflictChoice(const Oid& cls, const Oid& method,
                             std::optional<Oid> from_super);

  /// All (class, method, arity) triples with a direct definition.
  struct Entry {
    Oid cls;
    Oid method;
    int arity;
  };
  std::vector<Entry> AllDefinitions() const;

 private:
  struct Key {
    Oid cls;
    Oid method;
    int arity;
    bool operator==(const Key& other) const {
      return cls == other.cls && method == other.method &&
             arity == other.arity;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return k.cls.Hash() * 31 + k.method.Hash() * 7 +
             static_cast<size_t>(k.arity);
    }
  };

  std::unordered_map<Key, std::shared_ptr<const MethodBody>, KeyHash> defs_;
  // (cls, method) -> superclass chosen for conflict resolution.
  std::unordered_map<Key, Oid, KeyHash> conflict_choice_;
};

}  // namespace xsql

#endif  // XSQL_STORE_METHOD_H_
