#include "store/method.h"

#include <deque>

namespace xsql {

Status MethodRegistry::Define(const Oid& cls, const Oid& method, int arity,
                              std::shared_ptr<const MethodBody> body) {
  if (body == nullptr) {
    return Status::InvalidArgument("null method body for " + method.ToString());
  }
  if (body->arity() != arity) {
    return Status::InvalidArgument("body arity mismatch for " +
                                   method.ToString());
  }
  defs_[Key{cls, method, arity}] = std::move(body);
  return Status::OK();
}

Status MethodRegistry::ResolveConflict(const Oid& cls, const Oid& method,
                                       const Oid& from_super) {
  conflict_choice_[Key{cls, method, /*arity=*/-1}] = from_super;
  return Status::OK();
}

bool MethodRegistry::DefinedOn(const Oid& cls, const Oid& method,
                               int arity) const {
  return defs_.contains(Key{cls, method, arity});
}

Result<MethodRegistry::Resolution> MethodRegistry::Resolve(
    const ClassGraph& graph, const std::vector<Oid>& classes,
    const Oid& method, int arity) const {
  // Breadth-first search upward from the direct classes: the nearest
  // definition wins (overriding); two *incomparable* nearest definitions
  // are a conflict unless the schema resolved it.
  std::deque<Oid> frontier(classes.begin(), classes.end());
  OidSet visited;
  std::vector<Oid> hits;          // classes at the shallowest level with defs
  std::deque<Oid> next;
  while (!frontier.empty() && hits.empty()) {
    // Process one BFS level at a time so "nearest" is well defined.
    next.clear();
    for (const Oid& cls : frontier) {
      if (visited.Contains(cls)) continue;
      visited.Insert(cls);
      auto it = defs_.find(Key{cls, method, arity});
      if (it != defs_.end()) {
        hits.push_back(cls);
      } else {
        for (const Oid& super : graph.DirectSuperclasses(cls)) {
          next.push_back(super);
        }
      }
    }
    frontier = next;
  }
  if (hits.empty()) {
    return Status::NotFound("no definition of " + method.ToString() + "/" +
                            std::to_string(arity) + " visible");
  }
  if (hits.size() == 1) {
    return Resolution{hits[0], defs_.at(Key{hits[0], method, arity})};
  }
  // Multiple incomparable definitions at the same depth: consult the
  // explicit conflict-resolution table (checked per starting class).
  for (const Oid& start : classes) {
    auto choice = conflict_choice_.find(Key{start, method, /*arity=*/-1});
    if (choice != conflict_choice_.end()) {
      for (const Oid& hit : hits) {
        if (hit == choice->second ||
            graph.IsStrictSubclass(choice->second, hit)) {
          return Resolution{hit, defs_.at(Key{hit, method, arity})};
        }
      }
    }
  }
  std::string msg = "unresolved multiple-inheritance conflict for " +
                    method.ToString() + " among {";
  for (size_t i = 0; i < hits.size(); ++i) {
    if (i > 0) msg += ", ";
    msg += hits[i].ToString();
  }
  msg += "}; add an explicit resolution (MEY88)";
  return Status::RuntimeError(std::move(msg));
}

Result<MethodRegistry::Resolution> MethodRegistry::ResolveForClass(
    const ClassGraph& graph, const Oid& cls, const Oid& method,
    int arity) const {
  return Resolve(graph, {cls}, method, arity);
}

std::shared_ptr<const MethodBody> MethodRegistry::Definition(
    const Oid& cls, const Oid& method, int arity) const {
  auto it = defs_.find(Key{cls, method, arity});
  return it == defs_.end() ? nullptr : it->second;
}

void MethodRegistry::Restore(const Oid& cls, const Oid& method, int arity,
                             std::shared_ptr<const MethodBody> body) {
  Key key{cls, method, arity};
  if (body == nullptr) {
    defs_.erase(key);
  } else {
    defs_[key] = std::move(body);
  }
}

std::optional<Oid> MethodRegistry::ConflictChoice(const Oid& cls,
                                                  const Oid& method) const {
  auto it = conflict_choice_.find(Key{cls, method, /*arity=*/-1});
  if (it == conflict_choice_.end()) return std::nullopt;
  return it->second;
}

void MethodRegistry::RestoreConflictChoice(const Oid& cls, const Oid& method,
                                           std::optional<Oid> from_super) {
  Key key{cls, method, /*arity=*/-1};
  if (!from_super.has_value()) {
    conflict_choice_.erase(key);
  } else {
    conflict_choice_[key] = *from_super;
  }
}

std::vector<MethodRegistry::Entry> MethodRegistry::AllDefinitions() const {
  std::vector<Entry> out;
  out.reserve(defs_.size());
  for (const auto& [key, body] : defs_) {
    out.push_back(Entry{key.cls, key.method, key.arity});
  }
  return out;
}

}  // namespace xsql
