#ifndef XSQL_STORE_UNDO_LOG_H_
#define XSQL_STORE_UNDO_LOG_H_

#include <functional>
#include <utility>
#include <vector>

namespace xsql {

class Database;

/// A statement-scoped undo log: the inverse of every primitive mutation
/// a statement performs, recorded *before* the mutation is applied
/// (record-before-mutate). If the statement fails at any point —
/// including an injected fault mid-operation — applying the log in
/// reverse order restores the database to its pre-statement state.
///
/// Invariants (see docs/ROBUSTNESS.md):
///  * entries are recorded before the corresponding mutation, so the log
///    may contain inverses for mutations that never happened; every
///    inverse therefore tolerates absent state (no-op when the forward
///    mutation did not apply);
///  * Rollback applies inverses strictly last-recorded-first, through
///    raw store primitives that neither re-record undo entries nor hit
///    fault-injection checks;
///  * a log is single-use: Rollback clears it.
class UndoLog {
 public:
  using Action = std::function<void(Database*)>;

  void Record(Action action) { actions_.push_back(std::move(action)); }

  /// Applies all recorded inverses in reverse order, then clears the log.
  void Rollback(Database* db);

  size_t size() const { return actions_.size(); }
  bool empty() const { return actions_.empty(); }
  void Clear() { actions_.clear(); }

 private:
  std::vector<Action> actions_;
};

}  // namespace xsql

#endif  // XSQL_STORE_UNDO_LOG_H_
