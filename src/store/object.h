#ifndef XSQL_STORE_OBJECT_H_
#define XSQL_STORE_OBJECT_H_

#include <map>
#include <optional>
#include <string>

#include "common/status.h"
#include "oid/oid.h"

namespace xsql {

/// The value of one attribute of a tuple-object (§2, "Attributes").
///
/// Scalar attributes hold a single oid; set-valued attributes hold a set
/// of oids. Set-objects are just tuple-objects with one set-valued
/// attribute, so this one value type covers the whole model.
class AttrValue {
 public:
  static AttrValue Scalar(Oid value) {
    AttrValue v;
    v.set_valued_ = false;
    v.scalar_ = std::move(value);
    return v;
  }
  static AttrValue Set(OidSet values) {
    AttrValue v;
    v.set_valued_ = true;
    v.set_ = std::move(values);
    return v;
  }

  bool set_valued() const { return set_valued_; }
  const Oid& scalar() const { return scalar_; }
  const OidSet& set() const { return set_; }
  OidSet& mutable_set() { return set_; }

  /// The value viewed as a set: a scalar contributes a singleton. Path
  /// expressions treat scalar and set-valued attributes uniformly (§3.1),
  /// so this is the evaluator's main accessor.
  OidSet AsSet() const {
    if (set_valued_) return set_;
    OidSet s;
    s.Insert(scalar_);
    return s;
  }

  bool operator==(const AttrValue& other) const {
    return set_valued_ == other.set_valued_ &&
           (set_valued_ ? set_ == other.set_ : scalar_ == other.scalar_);
  }

  std::string ToString() const {
    return set_valued_ ? set_.ToString() : scalar_.ToString();
  }

 private:
  bool set_valued_ = false;
  Oid scalar_;
  OidSet set_;
};

/// A tuple-object: a logical oid plus attribute-name -> value entries.
///
/// All objects in the model are tuple-objects (§2); classes are objects
/// too and may carry attributes (including inheritable defaults), which is
/// why `Object` makes no distinction.
class Object {
 public:
  Object() = default;
  explicit Object(Oid id) : id_(std::move(id)) {}

  const Oid& id() const { return id_; }

  /// Sets attribute `attr` to the scalar `value`.
  void SetScalar(const Oid& attr, Oid value) {
    attrs_[attr] = AttrValue::Scalar(std::move(value));
  }

  /// Sets attribute `attr` to the set `values`.
  void SetSet(const Oid& attr, OidSet values) {
    attrs_[attr] = AttrValue::Set(std::move(values));
  }

  /// Adds one element to a set-valued attribute (created if missing).
  /// Fails if `attr` currently holds a scalar.
  Status AddToSet(const Oid& attr, const Oid& value);

  /// The stored value of `attr`, or nullptr when undefined *on this
  /// object* (inheritance of defaults is the Database's job).
  const AttrValue* Get(const Oid& attr) const {
    auto it = attrs_.find(attr);
    return it == attrs_.end() ? nullptr : &it->second;
  }

  /// Removes the attribute entirely (making it undefined here).
  void Remove(const Oid& attr) { attrs_.erase(attr); }

  /// All locally-defined attributes, sorted by attribute oid.
  const std::map<Oid, AttrValue>& attrs() const { return attrs_; }

  std::string ToString() const;

 private:
  Oid id_;
  std::map<Oid, AttrValue> attrs_;
};

}  // namespace xsql

#endif  // XSQL_STORE_OBJECT_H_
