#include "store/signature.h"

namespace xsql {

std::string Signature::ToString() const {
  std::string out = method.ToString();
  if (!args.empty()) {
    out += " : ";
    for (size_t i = 0; i < args.size(); ++i) {
      if (i > 0) out += ',';
      out += args[i].ToString();
    }
  }
  out += set_valued ? " =>> " : " => ";
  out += result.ToString();
  return out;
}

Status SignatureStore::Add(const Oid& cls, Signature sig) {
  auto& sigs = by_class_[cls];
  for (const Signature& existing : sigs) {
    if (existing == sig) return Status::OK();
  }
  sigs.push_back(std::move(sig));
  return Status::OK();
}

bool SignatureStore::Has(const Oid& cls, const Signature& sig) const {
  auto it = by_class_.find(cls);
  if (it == by_class_.end()) return false;
  for (const Signature& existing : it->second) {
    if (existing == sig) return true;
  }
  return false;
}

void SignatureStore::Remove(const Oid& cls, const Signature& sig) {
  auto it = by_class_.find(cls);
  if (it == by_class_.end()) return;
  auto& sigs = it->second;
  for (auto pos = sigs.begin(); pos != sigs.end(); ++pos) {
    if (*pos == sig) {
      sigs.erase(pos);
      break;
    }
  }
  if (sigs.empty()) by_class_.erase(it);
}

std::vector<Signature> SignatureStore::Declared(const Oid& cls,
                                                const Oid& method) const {
  std::vector<Signature> out;
  auto it = by_class_.find(cls);
  if (it == by_class_.end()) return out;
  for (const Signature& sig : it->second) {
    if (sig.method == method) out.push_back(sig);
  }
  return out;
}

std::vector<Signature> SignatureStore::Inherited(const ClassGraph& graph,
                                                 const Oid& cls,
                                                 const Oid& method) const {
  std::vector<Signature> out = Declared(cls, method);
  for (const Oid& ancestor : graph.Ancestors(cls)) {
    for (Signature& sig : Declared(ancestor, method)) {
      bool dup = false;
      for (const Signature& have : out) {
        if (have == sig) {
          dup = true;
          break;
        }
      }
      if (!dup) out.push_back(std::move(sig));
    }
  }
  return out;
}

OidSet SignatureStore::VisibleMethods(const ClassGraph& graph,
                                      const Oid& cls) const {
  OidSet out = DeclaredMethods(cls);
  for (const Oid& ancestor : graph.Ancestors(cls)) {
    out = OidSet::Union(out, DeclaredMethods(ancestor));
  }
  return out;
}

OidSet SignatureStore::DeclaredMethods(const Oid& cls) const {
  OidSet out;
  auto it = by_class_.find(cls);
  if (it == by_class_.end()) return out;
  for (const Signature& sig : it->second) out.Insert(sig.method);
  return out;
}

std::vector<std::pair<Oid, Signature>> SignatureStore::AllFor(
    const Oid& method) const {
  std::vector<std::pair<Oid, Signature>> out;
  for (const auto& [cls, sigs] : by_class_) {
    for (const Signature& sig : sigs) {
      if (sig.method == method) out.emplace_back(cls, sig);
    }
  }
  return out;
}

std::vector<Oid> SignatureStore::DeclaringClasses() const {
  std::vector<Oid> out;
  out.reserve(by_class_.size());
  for (const auto& [cls, sigs] : by_class_) {
    if (!sigs.empty()) out.push_back(cls);
  }
  return out;
}

}  // namespace xsql
