#include "store/catalog.h"

#include "store/database.h"

namespace xsql {

namespace builtin {

Oid Object() { return Oid::Atom("Object"); }
Oid Numeral() { return Oid::Atom("Numeral"); }
Oid String() { return Oid::Atom("String"); }
Oid Boolean() { return Oid::Atom("Boolean"); }
Oid NilClass() { return Oid::Atom("Nil"); }
Oid MetaClass() { return Oid::Atom("Class"); }
Oid MetaMethod() { return Oid::Atom("Method"); }

std::vector<Oid> All() {
  return {Object(),   Numeral(),   String(),    Boolean(),
          NilClass(), MetaClass(), MetaMethod()};
}

}  // namespace builtin

namespace catalog {

OidSet AttributesOf(const Database& db, const Oid& cls) {
  return db.signatures().VisibleMethods(db.graph(), cls);
}

std::vector<Oid> ClassesDeclaring(const Database& db, const Oid& method) {
  std::vector<Oid> out;
  for (const auto& [cls, sig] : db.signatures().AllFor(method)) {
    bool dup = false;
    for (const Oid& have : out) {
      if (have == cls) {
        dup = true;
        break;
      }
    }
    if (!dup) out.push_back(cls);
  }
  return out;
}

OidSet MethodNameUniverse(const Database& db) {
  return db.graph().Extent(builtin::MetaMethod());
}

OidSet ClassUniverse(const Database& db) {
  return db.graph().Extent(builtin::MetaClass());
}

std::string DumpSchema(const Database& db) {
  std::string out;
  for (const Oid& cls : db.graph().classes()) {
    out += "class ";
    out += cls.ToString();
    auto supers = db.graph().DirectSuperclasses(cls);
    if (!supers.empty()) {
      out += " isa ";
      for (size_t i = 0; i < supers.size(); ++i) {
        if (i > 0) out += ", ";
        out += supers[i].ToString();
      }
    }
    out += '\n';
    for (const Oid& method : db.signatures().DeclaredMethods(cls)) {
      for (const Signature& sig : db.signatures().Declared(cls, method)) {
        out += "  ";
        out += sig.ToString();
        out += '\n';
      }
    }
  }
  return out;
}

}  // namespace catalog

}  // namespace xsql
