#include "store/undo_log.h"

namespace xsql {

void UndoLog::Rollback(Database* db) {
  for (auto it = actions_.rbegin(); it != actions_.rend(); ++it) {
    (*it)(db);
  }
  actions_.clear();
}

}  // namespace xsql
