#ifndef XSQL_STORE_SIGNATURE_H_
#define XSQL_STORE_SIGNATURE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "oid/oid.h"
#include "store/class_graph.h"

namespace xsql {

/// One declared signature `Mthd : Arg1,...,Argk => Result` attached to a
/// class (§2 "Types", §6.1).
///
/// Attributes are 0-ary methods, so `attr => class` is just a Signature
/// with empty `args`. A method may carry several signatures, even for the
/// same argument classes (`workstudy : semester ->> {student, employee}`
/// is stored as two signatures).
struct Signature {
  Oid method;             // method-name oid (an atom)
  std::vector<Oid> args;  // argument classes, excluding the receiver
  Oid result;             // result class
  bool set_valued = false;

  bool operator==(const Signature& other) const {
    return method == other.method && args == other.args &&
           result == other.result && set_valued == other.set_valued;
  }

  /// Paper rendering, e.g. `Mthd : A,B => R` or `attr =>> R`.
  std::string ToString() const;
};

/// All signature declarations of a schema, indexed by declaring class.
///
/// Implements *structural inheritance* (§6.1, covariance): the signatures
/// of method M in class C' are all signatures declared for M in C' plus
/// all signatures declared in every ancestor of C'. Signatures are never
/// overridden, only accumulated — overriding applies to behaviour, not to
/// types.
class SignatureStore {
 public:
  /// Declares `sig` on `cls`.
  Status Add(const Oid& cls, Signature sig);

  /// True if exactly `sig` is already declared on `cls`.
  bool Has(const Oid& cls, const Signature& sig) const;

  /// Undo primitive: removes one declaration of `sig` from `cls`.
  /// No-op when absent.
  void Remove(const Oid& cls, const Signature& sig);

  /// Signatures of `method` declared *directly* on `cls`.
  std::vector<Signature> Declared(const Oid& cls, const Oid& method) const;

  /// All signatures of `method` visible in `cls` under structural
  /// inheritance: declared on `cls` or any ancestor.
  std::vector<Signature> Inherited(const ClassGraph& graph, const Oid& cls,
                                   const Oid& method) const;

  /// All method names with at least one signature visible in `cls`
  /// (declared or inherited).
  OidSet VisibleMethods(const ClassGraph& graph, const Oid& cls) const;

  /// All method names declared directly on `cls`.
  OidSet DeclaredMethods(const Oid& cls) const;

  /// Every (declaring class, signature) pair for `method`, across the
  /// whole schema. Used by the typing module to enumerate the candidate
  /// type expressions a method occurrence may be assigned.
  std::vector<std::pair<Oid, Signature>> AllFor(const Oid& method) const;

  /// All classes that declare at least one signature.
  std::vector<Oid> DeclaringClasses() const;

 private:
  // class -> its declared signatures.
  std::unordered_map<Oid, std::vector<Signature>, OidHash> by_class_;
};

}  // namespace xsql

#endif  // XSQL_STORE_SIGNATURE_H_
