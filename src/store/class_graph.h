#ifndef XSQL_STORE_CLASS_GRAPH_H_
#define XSQL_STORE_CLASS_GRAPH_H_

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "oid/oid.h"

namespace xsql {

/// The IS-A hierarchy and the instance-of relationship of §2.
///
/// Classes are identified by their class-oids (atoms like `Person`). The
/// IS-A (subclass) relation is a DAG — `AddSubclass` rejects edges that
/// would create a cycle. `instance-of` relates individual oids to the
/// classes they directly belong to; membership is closed upward along
/// IS-A (an instance of `Employee` is an instance of `Person`), exactly
/// the paper's containment rule, while the converse (extensional equality
/// does not imply IS-A) is naturally respected because IS-A is only what
/// was declared.
///
/// Storage is copy-on-write to support MVCC snapshots: each class node
/// (IS-A edges + direct extent) and each instance-of shard is held by
/// shared_ptr, so copying a ClassGraph shares all of them structurally.
/// Mutators clone a node/shard before the first write in the current
/// *epoch*; `BumpEpoch` (called on both sides of a database fork) starts
/// a new epoch, which forces the next write to each shared piece to
/// clone it. Ownership is decided by the epoch stamp alone — never by
/// refcount inspection — so a snapshot being released on another thread
/// can never race a writer's in-place-vs-clone decision.
class ClassGraph {
 public:
  ClassGraph();
  /// Copying shares every node and instance shard with the source.
  /// At least one side must BumpEpoch before its next mutation; the
  /// Database fork path bumps both sides.
  ClassGraph(const ClassGraph&) = default;
  ClassGraph& operator=(const ClassGraph&) = default;

  /// Starts a new copy-on-write epoch: every node/shard created before
  /// this call is treated as shared and cloned before the next write.
  void BumpEpoch() { ++epoch_; }

  /// Registers `cls` as a class with no superclasses (yet).
  /// Idempotent for already-declared classes.
  Status DeclareClass(const Oid& cls);

  /// Declares `sub` IS-A `super`. Both are auto-declared if new.
  /// Fails with InvalidArgument if the edge would create a cycle.
  Status AddSubclass(const Oid& sub, const Oid& super);

  /// Makes `obj` a direct instance of `cls` (declared on demand).
  Status AddInstance(const Oid& obj, const Oid& cls);

  /// Removes `obj` from the direct extent of `cls`.
  void RemoveInstance(const Oid& obj, const Oid& cls);

  /// Undo primitive: unregisters a class declared by mistake (unlinks
  /// its IS-A edges and drops any direct-instance memberships). No-op
  /// for undeclared classes.
  void RemoveClass(const Oid& cls);

  /// Undo primitive: removes a single IS-A edge. No-op when absent.
  void RemoveSubclassEdge(const Oid& sub, const Oid& super);

  bool IsClass(const Oid& oid) const;

  /// The paper's `subclassOf` is *strict*: `C subclassOf C` is false.
  bool IsStrictSubclass(const Oid& sub, const Oid& super) const;
  /// Reflexive subclass test.
  bool IsSubclassEq(const Oid& sub, const Oid& super) const;

  /// True if `obj` was declared an instance of `cls` or of a subclass.
  bool IsInstanceOf(const Oid& obj, const Oid& cls) const;

  /// All declared classes, in declaration order.
  const std::vector<Oid>& classes() const { return class_list_; }

  std::vector<Oid> DirectSuperclasses(const Oid& cls) const;
  std::vector<Oid> DirectSubclasses(const Oid& cls) const;

  /// All strict ancestors (resp. descendants) of `cls`.
  OidSet Ancestors(const Oid& cls) const;
  OidSet Descendants(const Oid& cls) const;

  /// Direct instances only.
  const OidSet& DirectExtent(const Oid& cls) const;

  /// Deep extent: direct instances of `cls` and of every descendant.
  OidSet Extent(const Oid& cls) const;

  /// The classes `obj` directly belongs to.
  std::vector<Oid> DirectClassesOf(const Oid& obj) const;

  /// Every (object, direct class) pair — snapshot/export support.
  std::vector<std::pair<Oid, Oid>> AllInstancePairs() const;

  /// All classes `obj` belongs to (direct classes + their ancestors).
  OidSet AllClassesOf(const Oid& obj) const;

  /// True if some declared class is a (non-strict) subclass of every class
  /// in `classes`. Used for the §6.2 range-emptiness test: a range with no
  /// common subclass (e.g. {Person, Company}) can never contain an oid.
  bool HaveCommonSubclass(const std::vector<Oid>& classes) const;

  /// §6.2 subrange test: a range `R` (set of classes) is a subrange of `T`
  /// if every oid that could belong to all of `R` is an instance of `T`;
  /// statically, every common (non-strict) subclass of `R` must be a
  /// subclass of `T`. Vacuously true when `R` has no common subclass.
  bool IsSubrange(const std::vector<Oid>& range, const Oid& of_class) const;

 private:
  struct Node {
    std::vector<Oid> supers;
    std::vector<Oid> subs;
    OidSet direct_extent;
    uint64_t epoch = 0;
  };

  /// instance_of_ is sharded so a single membership write copies one
  /// shard, not the whole data-sized map.
  static constexpr size_t kInstanceShards = 32;
  struct InstanceShard {
    std::unordered_map<Oid, std::vector<Oid>, OidHash> map;
    uint64_t epoch = 0;
  };

  static size_t ShardIndexOf(const Oid& oid) {
    return OidHash{}(oid) % kInstanceShards;
  }

  const Node* Find(const Oid& cls) const;
  /// COW: clones the node first when it predates the current epoch.
  Node* FindMutable(const Oid& cls);
  /// COW: clones the shard first when it predates the current epoch.
  InstanceShard& WritableShard(const Oid& obj);
  const std::vector<Oid>* FindInstance(const Oid& obj) const;

  std::unordered_map<Oid, std::shared_ptr<Node>, OidHash> nodes_;
  std::vector<Oid> class_list_;
  // obj -> direct classes, sharded by OidHash.
  std::array<std::shared_ptr<InstanceShard>, kInstanceShards> instance_of_;
  uint64_t epoch_ = 0;
};

}  // namespace xsql

#endif  // XSQL_STORE_CLASS_GRAPH_H_
