#ifndef XSQL_STORE_INDEX_H_
#define XSQL_STORE_INDEX_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "oid/oid.h"
#include "store/database.h"

namespace xsql {

/// A path index in the style of Bertino & Kim [BERT89] (the indexing
/// work the paper cites for nested-object queries): for an attribute
/// path `a1.a2...an` anchored at a class, maps each *terminal value* to
/// the set of head objects some database path connects to it. A path of
/// length 1 is the classic attribute (equality) index.
///
/// The index is value-complete with respect to the §2 semantics: it is
/// built through `Database::GetAttribute`, so inherited default values
/// are indexed like stored ones. It is a snapshot — `stale()` compares
/// the database version; the evaluator ignores stale indexes and falls
/// back to forward evaluation, so correctness never depends on rebuild
/// discipline.
class PathIndex {
 public:
  PathIndex(Oid anchor_class, std::vector<Oid> path)
      : anchor_class_(std::move(anchor_class)), path_(std::move(path)) {}

  /// (Re)builds the value -> heads map by one sweep from the anchor
  /// class extent.
  Status Build(const Database& db);

  const Oid& anchor_class() const { return anchor_class_; }
  const std::vector<Oid>& path() const { return path_; }
  bool built() const { return built_; }
  bool stale(const Database& db) const {
    return !built_ || built_at_ != db.version();
  }

  /// Head objects reaching `value` through the path. Empty set when the
  /// value is unknown.
  const OidSet& Lookup(const Oid& value) const;

  /// Number of distinct terminal values.
  size_t distinct_values() const { return by_value_.size(); }
  /// Total (value, head) entries.
  size_t entries() const { return entries_; }

  /// Key used by PathIndexSet ("Person/Residence.City").
  std::string Key() const;

 private:
  Oid anchor_class_;
  std::vector<Oid> path_;
  std::unordered_map<Oid, OidSet, OidHash> by_value_;
  size_t entries_ = 0;
  /// Explicit build flag: a version-0 database is a legal build target
  /// (the constructor registers builtins without bumping the version),
  /// so `built_at_ == 0` cannot double as "never built".
  bool built_ = false;
  uint64_t built_at_ = 0;
};

/// A registry of path indexes the evaluator consults. Lookup is by the
/// anchored attribute chain; only fresh (non-stale) indexes are served.
class PathIndexSet {
 public:
  /// Registers and builds an index; replaces an existing one for the
  /// same anchored path.
  Status Add(const Database& db, Oid anchor_class, std::vector<Oid> path);

  /// Rebuilds every stale index.
  Status Refresh(const Database& db);

  /// The fresh index for this anchored path, or nullptr.
  const PathIndex* Find(const Database& db, const Oid& anchor_class,
                        const std::vector<Oid>& path) const;

  size_t size() const { return indexes_.size(); }

 private:
  std::map<std::string, PathIndex> indexes_;
};

}  // namespace xsql

#endif  // XSQL_STORE_INDEX_H_
