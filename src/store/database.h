#ifndef XSQL_STORE_DATABASE_H_
#define XSQL_STORE_DATABASE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "oid/oid.h"
#include "store/class_graph.h"
#include "store/method.h"
#include "store/object.h"
#include "store/signature.h"
#include "store/undo_log.h"

namespace xsql {

/// The object-oriented database of §2: objects, classes, signatures,
/// methods and the instance-of / IS-A relationships, with the system
/// catalogue folded into the class hierarchy.
///
/// Key semantics implemented here rather than in sub-stores:
///  * literals (`20`, `'austin'`, `true`, `nil`) are instances of the
///    builtin classes Numeral/String/Boolean/Nil without registration;
///  * attribute lookup applies *behavioral inheritance of defaults*:
///    a value undefined on an object is inherited from the nearest
///    class-object (classes are objects and can carry default values);
///  * class extents for the literal classes use the *active domain*
///    (every oid occurring in the database), the standard logic-database
///    reading of an otherwise infinite extent;
///  * attribute names used in data are auto-registered as method-objects
///    (instances of `Method`) so that method variables can range over
///    them — the paper's schema-browsing feature.
///
/// MVCC support: `Fork()` produces a structurally-shared copy in O(schema
/// + shard-count) — the object map is sharded and each shard is held by
/// shared_ptr, as are the class-graph nodes. After a fork, the first
/// write to a shared shard/node in the new copy-on-write epoch clones it
/// (see ClassGraph for the epoch discipline). A fork taken under the
/// writer latch and never mutated again is an immutable snapshot that
/// concurrent readers can use with no synchronization at all.
class Database {
 public:
  Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// A structurally-shared copy for MVCC: shares every object-map shard,
  /// class-graph node, and the active-domain cache with `this`; copies
  /// the (schema-sized) signature and method stores. The fork starts a
  /// new COW epoch, so its first write to any shared piece clones it.
  /// The active-domain cache is prewarmed first so the fork's mutable
  /// lazy members never need a rebuild unless the fork itself mutates.
  ///
  /// If *this* database keeps mutating after the fork (the writer path:
  /// master forks a snapshot, then executes the next statement), the
  /// caller must call `BeginNewEpoch()` on it after forking — otherwise
  /// in-place writes would reach shards the fork shares.
  std::unique_ptr<Database> Fork() const;

  /// Starts a new COW epoch on this side of a fork (writer-path master).
  void BeginNewEpoch();

  // ---- Schema -------------------------------------------------------

  /// Declares a class. If `supers` is empty the class is made a direct
  /// subclass of `Object` (classes of individuals live under Object).
  Status DeclareClass(const Oid& cls, const std::vector<Oid>& supers = {});

  /// Adds an IS-A edge between existing or new classes.
  Status AddSubclass(const Oid& sub, const Oid& super);

  /// Declares signature `attr => result` (or `=>>`) on `cls` and
  /// registers `attr` as a method-object.
  Status DeclareAttribute(const Oid& cls, const Oid& attr, const Oid& result,
                          bool set_valued);

  /// Declares a full method signature on `cls`.
  Status DeclareSignature(const Oid& cls, Signature sig);

  /// Defines/overrides a method body on a class (see MethodRegistry).
  Status DefineMethod(const Oid& cls, const Oid& method, int arity,
                      std::shared_ptr<const MethodBody> body);

  /// Explicit multiple-inheritance conflict resolution [MEY88].
  Status ResolveMethodConflict(const Oid& cls, const Oid& method,
                               const Oid& from_super);

  // ---- Data ---------------------------------------------------------

  /// Creates an object with the given direct classes. The object record
  /// is created on first use even for class-objects.
  Status NewObject(const Oid& oid, const std::vector<Oid>& classes);

  /// Adds `oid` to further classes.
  Status AddInstanceOf(const Oid& oid, const Oid& cls);

  /// Sets a scalar attribute; registers `attr` as a method-object.
  Status SetScalar(const Oid& obj, const Oid& attr, const Oid& value);

  /// Sets a set-valued attribute wholesale.
  Status SetSet(const Oid& obj, const Oid& attr, OidSet values);

  /// Adds an element to a set-valued attribute.
  Status AddToSet(const Oid& obj, const Oid& attr, const Oid& value);

  /// Removes an attribute from an object (making it undefined there).
  Status ClearAttribute(const Oid& obj, const Oid& attr);

  /// Removes `oid` from the direct extent of `cls` (undoable, unlike the
  /// raw `mutable_graph().RemoveInstance` escape hatch).
  Status RemoveInstanceOf(const Oid& oid, const Oid& cls);

  // ---- Statement atomicity ------------------------------------------

  /// Starts recording inverse mutations into `log`. Every public mutator
  /// called until EndUndo records enough to restore the pre-statement
  /// state; see UndoLog for the protocol. `log` must outlive recording.
  void BeginUndo(UndoLog* log) { undo_ = log; }
  void EndUndo() { undo_ = nullptr; }
  bool undo_active() const { return undo_ != nullptr; }

  /// Applies `log` in reverse. Recording is suspended while rolling back
  /// (inverses must not record further inverses or trip fault checks).
  void Rollback(UndoLog* log);

  // ---- Lookup -------------------------------------------------------

  bool HasObject(const Oid& oid) const {
    const ObjectShard& shard = *objects_[ShardIndexOf(oid)];
    return shard.map.contains(oid);
  }
  const Object* GetObject(const Oid& oid) const;
  Object* GetMutableObject(const Oid& oid);

  /// The value of `attr` on `obj`, applying default-value inheritance
  /// from class-objects (nearest class wins; among incomparable nearest
  /// providers the smallest class oid wins — a deterministic stand-in
  /// for the schema-level conflict resolution the paper requires).
  /// Returns nullptr when the attribute is undefined (a null, not an
  /// error — see §2 on undefined vs. inapplicable).
  const AttrValue* GetAttribute(const Oid& obj, const Oid& attr) const;

  /// True if `oid` denotes an instance of `cls`, including literal
  /// instances of the builtin classes and upward IS-A closure.
  bool IsInstanceOf(const Oid& oid, const Oid& cls) const;

  /// Deep extent of `cls`. For Numeral/String/Boolean this is the set of
  /// matching literals in the active domain.
  OidSet Extent(const Oid& cls) const;

  /// Every oid that occurs in the database: object ids, attribute names,
  /// attribute values (recursing into id-term arguments is not needed —
  /// a term occurrence is itself a domain element).
  const OidSet& ActiveDomain() const;

  // ---- Components ---------------------------------------------------

  const ClassGraph& graph() const { return graph_; }
  ClassGraph& mutable_graph() { return graph_; }
  const SignatureStore& signatures() const { return signatures_; }
  SignatureStore& mutable_signatures() { return signatures_; }
  const MethodRegistry& methods() const { return methods_; }
  MethodRegistry& mutable_methods() { return methods_; }

  /// Number of data objects (including class-objects).
  size_t object_count() const {
    size_t n = 0;
    for (const auto& shard : objects_) n += shard->map.size();
    return n;
  }

  /// Visits every data object (including class-objects), unordered:
  /// `fn(const Oid&, const Object&)`. Replaces the old `objects()`
  /// accessor — the map is sharded for copy-on-write and no longer
  /// exists as one container.
  template <typename Fn>
  void ForEachObject(Fn&& fn) const {
    for (const auto& shard : objects_) {
      for (const auto& [oid, object] : shard->map) fn(oid, object);
    }
  }

  /// Monotone counter bumped on every mutation; used for cache
  /// invalidation by higher layers.
  uint64_t version() const { return version_; }

 private:
  /// Object map sharding: one shared_ptr'd shard per hash slice, so a
  /// write in a fresh COW epoch copies ~1/kObjectShards of the data.
  static constexpr size_t kObjectShards = 32;
  struct ObjectShard {
    std::unordered_map<Oid, Object, OidHash> map;
    uint64_t epoch = 0;
  };

  static size_t ShardIndexOf(const Oid& oid) {
    return OidHash{}(oid) % kObjectShards;
  }

  struct ForkTag {};
  Database(ForkTag, const Database& src);

  /// COW: clones the shard first when it predates the current epoch.
  ObjectShard& WritableShard(const Oid& oid);
  /// COW-aware raw lookups for undo inverses and internal mutators —
  /// they do not Touch() (Rollback touches once at the end).
  Object* FindMutableRaw(const Oid& oid);
  void EraseObjectRaw(const Oid& oid);

  Status RegisterMethodObject(const Oid& attr);
  Object& GetOrCreate(const Oid& oid);
  void Touch() { ++version_; active_domain_dirty_ = true; }

  /// Fault-injection hook for the mutation domain (see common/fault.h).
  static Status FaultCheck(const char* site);

  // Undo-recording wrappers around the raw graph primitives: they save
  // the inverse (only when the forward call would actually change state)
  // before delegating.
  Status GraphDeclareClass(const Oid& cls);
  Status GraphAddSubclass(const Oid& sub, const Oid& super);
  Status GraphAddInstance(const Oid& obj, const Oid& cls);

  /// Saves the current value of (`obj`, `attr`) into the undo log before
  /// an attribute write/clear.
  void RecordUndoAttr(const Oid& obj, const Oid& attr);

  ClassGraph graph_;
  SignatureStore signatures_;
  MethodRegistry methods_;
  std::array<std::shared_ptr<ObjectShard>, kObjectShards> objects_;
  UndoLog* undo_ = nullptr;
  uint64_t version_ = 0;
  /// Copy-on-write epoch: shards/nodes stamped with an older epoch are
  /// shared with some fork and must be cloned before a write.
  uint64_t cow_epoch_ = 0;

  /// Lazily rebuilt by ActiveDomain(); shared (not copied) across forks.
  /// A snapshot is always forked clean (prewarmed, dirty flag false), so
  /// concurrent readers never write these mutable members.
  mutable std::shared_ptr<const OidSet> active_domain_;
  mutable bool active_domain_dirty_ = true;
};

}  // namespace xsql

#endif  // XSQL_STORE_DATABASE_H_
