#ifndef XSQL_STORE_DATABASE_H_
#define XSQL_STORE_DATABASE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "oid/oid.h"
#include "store/class_graph.h"
#include "store/method.h"
#include "store/object.h"
#include "store/signature.h"
#include "store/undo_log.h"

namespace xsql {

/// The object-oriented database of §2: objects, classes, signatures,
/// methods and the instance-of / IS-A relationships, with the system
/// catalogue folded into the class hierarchy.
///
/// Key semantics implemented here rather than in sub-stores:
///  * literals (`20`, `'austin'`, `true`, `nil`) are instances of the
///    builtin classes Numeral/String/Boolean/Nil without registration;
///  * attribute lookup applies *behavioral inheritance of defaults*:
///    a value undefined on an object is inherited from the nearest
///    class-object (classes are objects and can carry default values);
///  * class extents for the literal classes use the *active domain*
///    (every oid occurring in the database), the standard logic-database
///    reading of an otherwise infinite extent;
///  * attribute names used in data are auto-registered as method-objects
///    (instances of `Method`) so that method variables can range over
///    them — the paper's schema-browsing feature.
class Database {
 public:
  Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // ---- Schema -------------------------------------------------------

  /// Declares a class. If `supers` is empty the class is made a direct
  /// subclass of `Object` (classes of individuals live under Object).
  Status DeclareClass(const Oid& cls, const std::vector<Oid>& supers = {});

  /// Adds an IS-A edge between existing or new classes.
  Status AddSubclass(const Oid& sub, const Oid& super);

  /// Declares signature `attr => result` (or `=>>`) on `cls` and
  /// registers `attr` as a method-object.
  Status DeclareAttribute(const Oid& cls, const Oid& attr, const Oid& result,
                          bool set_valued);

  /// Declares a full method signature on `cls`.
  Status DeclareSignature(const Oid& cls, Signature sig);

  /// Defines/overrides a method body on a class (see MethodRegistry).
  Status DefineMethod(const Oid& cls, const Oid& method, int arity,
                      std::shared_ptr<const MethodBody> body);

  /// Explicit multiple-inheritance conflict resolution [MEY88].
  Status ResolveMethodConflict(const Oid& cls, const Oid& method,
                               const Oid& from_super);

  // ---- Data ---------------------------------------------------------

  /// Creates an object with the given direct classes. The object record
  /// is created on first use even for class-objects.
  Status NewObject(const Oid& oid, const std::vector<Oid>& classes);

  /// Adds `oid` to further classes.
  Status AddInstanceOf(const Oid& oid, const Oid& cls);

  /// Sets a scalar attribute; registers `attr` as a method-object.
  Status SetScalar(const Oid& obj, const Oid& attr, const Oid& value);

  /// Sets a set-valued attribute wholesale.
  Status SetSet(const Oid& obj, const Oid& attr, OidSet values);

  /// Adds an element to a set-valued attribute.
  Status AddToSet(const Oid& obj, const Oid& attr, const Oid& value);

  /// Removes an attribute from an object (making it undefined there).
  Status ClearAttribute(const Oid& obj, const Oid& attr);

  /// Removes `oid` from the direct extent of `cls` (undoable, unlike the
  /// raw `mutable_graph().RemoveInstance` escape hatch).
  Status RemoveInstanceOf(const Oid& oid, const Oid& cls);

  // ---- Statement atomicity ------------------------------------------

  /// Starts recording inverse mutations into `log`. Every public mutator
  /// called until EndUndo records enough to restore the pre-statement
  /// state; see UndoLog for the protocol. `log` must outlive recording.
  void BeginUndo(UndoLog* log) { undo_ = log; }
  void EndUndo() { undo_ = nullptr; }
  bool undo_active() const { return undo_ != nullptr; }

  /// Applies `log` in reverse. Recording is suspended while rolling back
  /// (inverses must not record further inverses or trip fault checks).
  void Rollback(UndoLog* log);

  // ---- Lookup -------------------------------------------------------

  bool HasObject(const Oid& oid) const { return objects_.contains(oid); }
  const Object* GetObject(const Oid& oid) const;
  Object* GetMutableObject(const Oid& oid);

  /// The value of `attr` on `obj`, applying default-value inheritance
  /// from class-objects (nearest class wins; among incomparable nearest
  /// providers the smallest class oid wins — a deterministic stand-in
  /// for the schema-level conflict resolution the paper requires).
  /// Returns nullptr when the attribute is undefined (a null, not an
  /// error — see §2 on undefined vs. inapplicable).
  const AttrValue* GetAttribute(const Oid& obj, const Oid& attr) const;

  /// True if `oid` denotes an instance of `cls`, including literal
  /// instances of the builtin classes and upward IS-A closure.
  bool IsInstanceOf(const Oid& oid, const Oid& cls) const;

  /// Deep extent of `cls`. For Numeral/String/Boolean this is the set of
  /// matching literals in the active domain.
  OidSet Extent(const Oid& cls) const;

  /// Every oid that occurs in the database: object ids, attribute names,
  /// attribute values (recursing into id-term arguments is not needed —
  /// a term occurrence is itself a domain element).
  const OidSet& ActiveDomain() const;

  // ---- Components ---------------------------------------------------

  const ClassGraph& graph() const { return graph_; }
  ClassGraph& mutable_graph() { return graph_; }
  const SignatureStore& signatures() const { return signatures_; }
  SignatureStore& mutable_signatures() { return signatures_; }
  const MethodRegistry& methods() const { return methods_; }
  MethodRegistry& mutable_methods() { return methods_; }

  /// All data objects (including class-objects), unordered.
  const std::unordered_map<Oid, Object, OidHash>& objects() const {
    return objects_;
  }

  /// Monotone counter bumped on every mutation; used for cache
  /// invalidation by higher layers.
  uint64_t version() const { return version_; }

 private:
  Status RegisterMethodObject(const Oid& attr);
  Object& GetOrCreate(const Oid& oid);
  void Touch() { ++version_; active_domain_dirty_ = true; }

  /// Fault-injection hook for the mutation domain (see common/fault.h).
  static Status FaultCheck(const char* site);

  // Undo-recording wrappers around the raw graph primitives: they save
  // the inverse (only when the forward call would actually change state)
  // before delegating.
  Status GraphDeclareClass(const Oid& cls);
  Status GraphAddSubclass(const Oid& sub, const Oid& super);
  Status GraphAddInstance(const Oid& obj, const Oid& cls);

  /// Saves the current value of (`obj`, `attr`) into the undo log before
  /// an attribute write/clear.
  void RecordUndoAttr(const Oid& obj, const Oid& attr);

  ClassGraph graph_;
  SignatureStore signatures_;
  MethodRegistry methods_;
  std::unordered_map<Oid, Object, OidHash> objects_;
  UndoLog* undo_ = nullptr;
  uint64_t version_ = 0;

  mutable OidSet active_domain_;
  mutable bool active_domain_dirty_ = true;
};

}  // namespace xsql

#endif  // XSQL_STORE_DATABASE_H_
