#include "store/object.h"

namespace xsql {

Status Object::AddToSet(const Oid& attr, const Oid& value) {
  auto it = attrs_.find(attr);
  if (it == attrs_.end()) {
    OidSet s;
    s.Insert(value);
    attrs_.emplace(attr, AttrValue::Set(std::move(s)));
    return Status::OK();
  }
  if (!it->second.set_valued()) {
    return Status::InvalidArgument("attribute " + attr.ToString() + " of " +
                                   id_.ToString() + " is scalar");
  }
  it->second.mutable_set().Insert(value);
  return Status::OK();
}

std::string Object::ToString() const {
  std::string out = id_.ToString() + "[";
  bool first = true;
  for (const auto& [attr, value] : attrs_) {
    if (!first) out += "; ";
    first = false;
    out += attr.ToString();
    out += value.set_valued() ? " ->> " : " -> ";
    out += value.ToString();
  }
  out += ']';
  return out;
}

}  // namespace xsql
