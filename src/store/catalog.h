#ifndef XSQL_STORE_CATALOG_H_
#define XSQL_STORE_CATALOG_H_

#include <string>
#include <vector>

#include "oid/oid.h"

namespace xsql {

class Database;

/// Built-in class oids (§2).
///
/// The paper's catalog design makes the system catalogue *part of the
/// class hierarchy*: classes are objects (instances of the meta-class
/// `Class`) and attribute/method names are objects (instances of the
/// meta-class `Method`), so the very same language browses schema and
/// data. These are the well-known class names that make that work.
namespace builtin {

/// Root class of all individual objects.
Oid Object();
/// Class of all numbers (ints and reals are its literal instances).
Oid Numeral();
/// Class of all strings.
Oid String();
/// Class of booleans.
Oid Boolean();
/// Class containing only `nil` (§5 uses nil as a "no meaningful value").
Oid NilClass();
/// Meta-class whose instances are the class-objects themselves.
Oid MetaClass();
/// Meta-class whose instances are attribute- and method-name objects.
Oid MetaMethod();

/// All builtin class oids, for iteration.
std::vector<Oid> All();

}  // namespace builtin

/// Schema-browsing helpers over the catalog (§1's "engine types" need,
/// §3.1's class/attribute variables). These answer the questions the
/// relational model would require system tables for.
namespace catalog {

/// Attribute/method names visible on `cls` through declared signatures
/// (including structurally inherited ones).
OidSet AttributesOf(const Database& db, const Oid& cls);

/// Classes that declare (directly) a signature for `method`.
std::vector<Oid> ClassesDeclaring(const Database& db, const Oid& method);

/// All attribute/method-name objects known to the database — the range of
/// the paper's method variables (`"Y`).
OidSet MethodNameUniverse(const Database& db);

/// All class-objects — the range of class variables (`$X`).
OidSet ClassUniverse(const Database& db);

/// Multi-line textual rendering of the schema (classes, IS-A edges,
/// signatures), used by examples and debugging.
std::string DumpSchema(const Database& db);

}  // namespace catalog

}  // namespace xsql

#endif  // XSQL_STORE_CATALOG_H_
