#include "store/index.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace xsql {

Status PathIndex::Build(const Database& db) {
  static obs::Counter& builds =
      obs::MetricsRegistry::Global().GetCounter("xsql.index.builds");
  builds.Inc();
  obs::Span span("index/build",
                 [&] { return anchor_class_.ToString(); });
  by_value_.clear();
  entries_ = 0;
  for (const Oid& head : db.Extent(anchor_class_)) {
    // One forward sweep per head; GetAttribute applies default-value
    // inheritance, so the index sees exactly what the evaluator sees.
    OidSet frontier;
    frontier.Insert(head);
    for (const Oid& attr : path_) {
      std::vector<Oid> next;
      for (const Oid& obj : frontier) {
        if (const AttrValue* value = db.GetAttribute(obj, attr)) {
          for (const Oid& v : value->AsSet()) next.push_back(v);
        }
      }
      frontier = OidSet(std::move(next));
    }
    for (const Oid& terminal : frontier) {
      OidSet& heads = by_value_[terminal];
      size_t before = heads.size();
      heads.Insert(head);
      entries_ += heads.size() - before;
    }
  }
  built_ = true;
  built_at_ = db.version();
  return Status::OK();
}

const OidSet& PathIndex::Lookup(const Oid& value) const {
  static const OidSet kEmpty;
  auto it = by_value_.find(value);
  return it == by_value_.end() ? kEmpty : it->second;
}

std::string PathIndex::Key() const {
  std::string key = anchor_class_.ToString() + "/";
  for (size_t i = 0; i < path_.size(); ++i) {
    if (i > 0) key += ".";
    key += path_[i].ToString();
  }
  return key;
}

Status PathIndexSet::Add(const Database& db, Oid anchor_class,
                         std::vector<Oid> path) {
  if (path.empty()) {
    return Status::InvalidArgument("path index needs at least one attribute");
  }
  PathIndex index(std::move(anchor_class), std::move(path));
  XSQL_RETURN_IF_ERROR(index.Build(db));
  std::string key = index.Key();
  indexes_.erase(key);
  indexes_.emplace(std::move(key), std::move(index));
  return Status::OK();
}

Status PathIndexSet::Refresh(const Database& db) {
  for (auto& [key, index] : indexes_) {
    if (index.stale(db)) {
      XSQL_RETURN_IF_ERROR(index.Build(db));
    }
  }
  return Status::OK();
}

const PathIndex* PathIndexSet::Find(const Database& db,
                                    const Oid& anchor_class,
                                    const std::vector<Oid>& path) const {
  PathIndex probe(anchor_class, path);
  auto it = indexes_.find(probe.Key());
  if (it == indexes_.end()) return nullptr;
  if (it->second.stale(db)) return nullptr;
  return &it->second;
}

}  // namespace xsql
