#include "store/class_graph.h"

#include <algorithm>
#include <deque>

#include "obs/metrics.h"

namespace xsql {

namespace {

/// COW accounting (xsql.mvcc.*): how often a write had to clone a
/// shared piece, and roughly how many bytes the clones copied. The byte
/// figure is an estimate (container footprints, not deep oid payloads)
/// — it is a *trend* metric for snapshot churn, not an allocator audit.
void CountCowClone(size_t approx_bytes) {
  static obs::Counter& clones =
      obs::MetricsRegistry::Global().GetCounter("xsql.mvcc.cow_clones");
  static obs::Counter& bytes =
      obs::MetricsRegistry::Global().GetCounter("xsql.mvcc.cow_bytes");
  clones.Inc();
  bytes.Inc(static_cast<uint64_t>(approx_bytes));
}

}  // namespace

ClassGraph::ClassGraph() {
  for (auto& shard : instance_of_) {
    shard = std::make_shared<InstanceShard>();
  }
}

const ClassGraph::Node* ClassGraph::Find(const Oid& cls) const {
  auto it = nodes_.find(cls);
  return it == nodes_.end() ? nullptr : it->second.get();
}

ClassGraph::Node* ClassGraph::FindMutable(const Oid& cls) {
  auto it = nodes_.find(cls);
  if (it == nodes_.end()) return nullptr;
  if (it->second->epoch != epoch_) {
    // The node predates the current epoch, so a snapshot may share it:
    // clone before the write (class-extent granularity COW).
    auto clone = std::make_shared<Node>(*it->second);
    clone->epoch = epoch_;
    CountCowClone(sizeof(Node) +
                  (clone->supers.size() + clone->subs.size() +
                   clone->direct_extent.size()) *
                      sizeof(Oid));
    it->second = std::move(clone);
  }
  return it->second.get();
}

ClassGraph::InstanceShard& ClassGraph::WritableShard(const Oid& obj) {
  std::shared_ptr<InstanceShard>& slot = instance_of_[ShardIndexOf(obj)];
  if (slot->epoch != epoch_) {
    auto clone = std::make_shared<InstanceShard>(*slot);
    clone->epoch = epoch_;
    CountCowClone(sizeof(InstanceShard) +
                  clone->map.size() *
                      (sizeof(Oid) + sizeof(std::vector<Oid>)));
    slot = std::move(clone);
  }
  return *slot;
}

const std::vector<Oid>* ClassGraph::FindInstance(const Oid& obj) const {
  const InstanceShard& shard = *instance_of_[ShardIndexOf(obj)];
  auto it = shard.map.find(obj);
  return it == shard.map.end() ? nullptr : &it->second;
}

Status ClassGraph::DeclareClass(const Oid& cls) {
  if (nodes_.contains(cls)) return Status::OK();
  auto node = std::make_shared<Node>();
  node->epoch = epoch_;
  nodes_.emplace(cls, std::move(node));
  class_list_.push_back(cls);
  return Status::OK();
}

Status ClassGraph::AddSubclass(const Oid& sub, const Oid& super) {
  if (sub == super) {
    return Status::InvalidArgument("IS-A is acyclic: " + sub.ToString() +
                                   " cannot be its own subclass");
  }
  XSQL_RETURN_IF_ERROR(DeclareClass(sub));
  XSQL_RETURN_IF_ERROR(DeclareClass(super));
  // Reject cycles: super must not already be a descendant of sub.
  if (IsStrictSubclass(super, sub)) {
    return Status::InvalidArgument("IS-A edge " + sub.ToString() + " -> " +
                                   super.ToString() + " would create a cycle");
  }
  {
    const Node* s = Find(sub);
    if (std::find(s->supers.begin(), s->supers.end(), super) !=
        s->supers.end()) {
      return Status::OK();
    }
  }
  FindMutable(sub)->supers.push_back(super);
  FindMutable(super)->subs.push_back(sub);
  return Status::OK();
}

Status ClassGraph::AddInstance(const Oid& obj, const Oid& cls) {
  XSQL_RETURN_IF_ERROR(DeclareClass(cls));
  {
    const std::vector<Oid>* classes = FindInstance(obj);
    if (classes != nullptr &&
        std::find(classes->begin(), classes->end(), cls) != classes->end()) {
      return Status::OK();
    }
  }
  WritableShard(obj).map[obj].push_back(cls);
  FindMutable(cls)->direct_extent.Insert(obj);
  return Status::OK();
}

void ClassGraph::RemoveInstance(const Oid& obj, const Oid& cls) {
  {
    const std::vector<Oid>* classes = FindInstance(obj);
    if (classes == nullptr ||
        std::find(classes->begin(), classes->end(), cls) == classes->end()) {
      return;
    }
  }
  InstanceShard& shard = WritableShard(obj);
  auto& classes = shard.map[obj];
  classes.erase(std::find(classes.begin(), classes.end(), cls));
  if (Node* n = FindMutable(cls)) {
    OidSet pruned;
    for (const Oid& o : n->direct_extent) {
      if (!(o == obj)) pruned.Insert(o);
    }
    n->direct_extent = std::move(pruned);
  }
}

void ClassGraph::RemoveClass(const Oid& cls) {
  auto it = nodes_.find(cls);
  if (it == nodes_.end()) return;
  const std::vector<Oid> supers = it->second->supers;
  const std::vector<Oid> subs = it->second->subs;
  for (const Oid& super : supers) {
    if (Node* n = FindMutable(super)) {
      auto pos = std::find(n->subs.begin(), n->subs.end(), cls);
      if (pos != n->subs.end()) n->subs.erase(pos);
    }
  }
  for (const Oid& sub : subs) {
    if (Node* n = FindMutable(sub)) {
      auto pos = std::find(n->supers.begin(), n->supers.end(), cls);
      if (pos != n->supers.end()) n->supers.erase(pos);
    }
  }
  nodes_.erase(cls);
  auto pos = std::find(class_list_.begin(), class_list_.end(), cls);
  if (pos != class_list_.end()) class_list_.erase(pos);
  // Drop dangling direct-instance memberships of the vanished class.
  // Rare (undo-only path), so COW-cloning every touched shard is fine.
  for (size_t i = 0; i < kInstanceShards; ++i) {
    bool touches = false;
    for (const auto& [obj, classes] : instance_of_[i]->map) {
      if (std::find(classes.begin(), classes.end(), cls) != classes.end()) {
        touches = true;
        break;
      }
    }
    if (!touches) continue;
    // Clone via any member oid of the shard: index i is what matters.
    std::shared_ptr<InstanceShard>& slot = instance_of_[i];
    if (slot->epoch != epoch_) {
      auto clone = std::make_shared<InstanceShard>(*slot);
      clone->epoch = epoch_;
      slot = std::move(clone);
    }
    for (auto mi = slot->map.begin(); mi != slot->map.end();) {
      auto& classes = mi->second;
      auto cp = std::find(classes.begin(), classes.end(), cls);
      if (cp != classes.end()) classes.erase(cp);
      if (classes.empty()) {
        mi = slot->map.erase(mi);
      } else {
        ++mi;
      }
    }
  }
}

void ClassGraph::RemoveSubclassEdge(const Oid& sub, const Oid& super) {
  if (Node* s = FindMutable(sub)) {
    auto pos = std::find(s->supers.begin(), s->supers.end(), super);
    if (pos != s->supers.end()) s->supers.erase(pos);
  }
  if (Node* p = FindMutable(super)) {
    auto pos = std::find(p->subs.begin(), p->subs.end(), sub);
    if (pos != p->subs.end()) p->subs.erase(pos);
  }
}

bool ClassGraph::IsClass(const Oid& oid) const { return nodes_.contains(oid); }

bool ClassGraph::IsStrictSubclass(const Oid& sub, const Oid& super) const {
  if (sub == super) return false;
  const Node* start = Find(sub);
  if (start == nullptr || Find(super) == nullptr) return false;
  // Upward BFS from sub.
  std::deque<Oid> queue(start->supers.begin(), start->supers.end());
  OidSet seen;
  while (!queue.empty()) {
    Oid cur = queue.front();
    queue.pop_front();
    if (cur == super) return true;
    if (seen.Contains(cur)) continue;
    seen.Insert(cur);
    if (const Node* n = Find(cur)) {
      for (const Oid& s : n->supers) queue.push_back(s);
    }
  }
  return false;
}

bool ClassGraph::IsSubclassEq(const Oid& sub, const Oid& super) const {
  return (sub == super && IsClass(sub)) || IsStrictSubclass(sub, super);
}

bool ClassGraph::IsInstanceOf(const Oid& obj, const Oid& cls) const {
  const std::vector<Oid>* classes = FindInstance(obj);
  if (classes == nullptr) return false;
  for (const Oid& direct : *classes) {
    if (IsSubclassEq(direct, cls)) return true;
  }
  return false;
}

std::vector<Oid> ClassGraph::DirectSuperclasses(const Oid& cls) const {
  const Node* n = Find(cls);
  return n == nullptr ? std::vector<Oid>{} : n->supers;
}

std::vector<Oid> ClassGraph::DirectSubclasses(const Oid& cls) const {
  const Node* n = Find(cls);
  return n == nullptr ? std::vector<Oid>{} : n->subs;
}

OidSet ClassGraph::Ancestors(const Oid& cls) const {
  OidSet out;
  const Node* start = Find(cls);
  if (start == nullptr) return out;
  std::deque<Oid> queue(start->supers.begin(), start->supers.end());
  while (!queue.empty()) {
    Oid cur = queue.front();
    queue.pop_front();
    if (out.Contains(cur)) continue;
    out.Insert(cur);
    if (const Node* n = Find(cur)) {
      for (const Oid& s : n->supers) queue.push_back(s);
    }
  }
  return out;
}

OidSet ClassGraph::Descendants(const Oid& cls) const {
  OidSet out;
  const Node* start = Find(cls);
  if (start == nullptr) return out;
  std::deque<Oid> queue(start->subs.begin(), start->subs.end());
  while (!queue.empty()) {
    Oid cur = queue.front();
    queue.pop_front();
    if (out.Contains(cur)) continue;
    out.Insert(cur);
    if (const Node* n = Find(cur)) {
      for (const Oid& s : n->subs) queue.push_back(s);
    }
  }
  return out;
}

const OidSet& ClassGraph::DirectExtent(const Oid& cls) const {
  static const OidSet kEmpty;
  const Node* n = Find(cls);
  return n == nullptr ? kEmpty : n->direct_extent;
}

OidSet ClassGraph::Extent(const Oid& cls) const {
  OidSet out = DirectExtent(cls);
  for (const Oid& sub : Descendants(cls)) {
    out = OidSet::Union(out, DirectExtent(sub));
  }
  return out;
}

std::vector<Oid> ClassGraph::DirectClassesOf(const Oid& obj) const {
  const std::vector<Oid>* classes = FindInstance(obj);
  return classes == nullptr ? std::vector<Oid>{} : *classes;
}

std::vector<std::pair<Oid, Oid>> ClassGraph::AllInstancePairs() const {
  std::vector<std::pair<Oid, Oid>> out;
  for (const auto& shard : instance_of_) {
    for (const auto& [obj, classes] : shard->map) {
      for (const Oid& cls : classes) out.emplace_back(obj, cls);
    }
  }
  return out;
}

OidSet ClassGraph::AllClassesOf(const Oid& obj) const {
  OidSet out;
  for (const Oid& direct : DirectClassesOf(obj)) {
    out.Insert(direct);
    out = OidSet::Union(out, Ancestors(direct));
  }
  return out;
}

bool ClassGraph::HaveCommonSubclass(const std::vector<Oid>& classes) const {
  if (classes.empty()) return true;
  for (const Oid& candidate : class_list_) {
    bool below_all = true;
    for (const Oid& cls : classes) {
      if (!IsSubclassEq(candidate, cls)) {
        below_all = false;
        break;
      }
    }
    if (below_all) return true;
  }
  return false;
}

bool ClassGraph::IsSubrange(const std::vector<Oid>& range,
                            const Oid& of_class) const {
  for (const Oid& candidate : class_list_) {
    bool below_all = true;
    for (const Oid& cls : range) {
      if (!IsSubclassEq(candidate, cls)) {
        below_all = false;
        break;
      }
    }
    if (below_all && !IsSubclassEq(candidate, of_class)) return false;
  }
  return true;
}

}  // namespace xsql
