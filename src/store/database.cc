#include "store/database.h"

#include <algorithm>
#include <deque>

#include "common/fault.h"
#include "obs/metrics.h"
#include "store/catalog.h"

namespace xsql {

Database::Database() {
  for (auto& shard : objects_) {
    shard = std::make_shared<ObjectShard>();
  }
  // Builtin hierarchy: individual classes live under Object; the two
  // meta-classes (Class, Method) stand apart, making the catalog part of
  // the hierarchy without mixing the class universe into individuals.
  (void)graph_.DeclareClass(builtin::Object());
  (void)graph_.AddSubclass(builtin::Numeral(), builtin::Object());
  (void)graph_.AddSubclass(builtin::String(), builtin::Object());
  (void)graph_.AddSubclass(builtin::Boolean(), builtin::Object());
  (void)graph_.AddSubclass(builtin::NilClass(), builtin::Object());
  (void)graph_.DeclareClass(builtin::MetaClass());
  (void)graph_.DeclareClass(builtin::MetaMethod());
  for (const Oid& cls : builtin::All()) {
    (void)graph_.AddInstance(cls, builtin::MetaClass());
  }
}

Database::Database(ForkTag, const Database& src)
    : graph_(src.graph_),
      signatures_(src.signatures_),
      methods_(src.methods_),
      objects_(src.objects_),
      version_(src.version_),
      cow_epoch_(src.cow_epoch_ + 1),
      active_domain_(src.active_domain_),
      active_domain_dirty_(src.active_domain_dirty_) {
  // The fork's first write to any shared node/shard must clone it.
  graph_.BumpEpoch();
}

std::unique_ptr<Database> Database::Fork() const {
  // Prewarm the lazy active-domain cache so the fork is born clean:
  // concurrent readers of an immutable snapshot must never trigger a
  // rebuild of a mutable member.
  (void)ActiveDomain();
  return std::unique_ptr<Database>(new Database(ForkTag{}, *this));
}

void Database::BeginNewEpoch() {
  ++cow_epoch_;
  graph_.BumpEpoch();
}

Database::ObjectShard& Database::WritableShard(const Oid& oid) {
  std::shared_ptr<ObjectShard>& slot = objects_[ShardIndexOf(oid)];
  if (slot->epoch != cow_epoch_) {
    auto clone = std::make_shared<ObjectShard>(*slot);
    clone->epoch = cow_epoch_;
    static obs::Counter& clones =
        obs::MetricsRegistry::Global().GetCounter("xsql.mvcc.cow_clones");
    static obs::Counter& bytes =
        obs::MetricsRegistry::Global().GetCounter("xsql.mvcc.cow_bytes");
    clones.Inc();
    bytes.Inc(static_cast<uint64_t>(sizeof(ObjectShard) +
                                    clone->map.size() *
                                        (sizeof(Oid) + sizeof(Object))));
    slot = std::move(clone);
  }
  return *slot;
}

Object* Database::FindMutableRaw(const Oid& oid) {
  // Probe the const view first: cloning a whole shard to discover the
  // object is absent would be a wasted copy.
  if (!HasObject(oid)) return nullptr;
  ObjectShard& shard = WritableShard(oid);
  auto it = shard.map.find(oid);
  return it == shard.map.end() ? nullptr : &it->second;
}

void Database::EraseObjectRaw(const Oid& oid) {
  if (!HasObject(oid)) return;
  WritableShard(oid).map.erase(oid);
}

Status Database::DeclareClass(const Oid& cls, const std::vector<Oid>& supers) {
  XSQL_RETURN_IF_ERROR(FaultCheck("Database::DeclareClass"));
  if (!cls.is_atom()) {
    return Status::InvalidArgument("class oid must be an atom: " +
                                   cls.ToString());
  }
  XSQL_RETURN_IF_ERROR(GraphDeclareClass(cls));
  if (supers.empty()) {
    XSQL_RETURN_IF_ERROR(GraphAddSubclass(cls, builtin::Object()));
  } else {
    for (const Oid& super : supers) {
      XSQL_RETURN_IF_ERROR(FaultCheck("Database::DeclareClass#super"));
      XSQL_RETURN_IF_ERROR(GraphAddSubclass(cls, super));
    }
  }
  // Classes are objects: register in the meta-class and give them a
  // (possibly empty) tuple-object record.
  XSQL_RETURN_IF_ERROR(GraphAddInstance(cls, builtin::MetaClass()));
  GetOrCreate(cls);
  Touch();
  return Status::OK();
}

Status Database::AddSubclass(const Oid& sub, const Oid& super) {
  XSQL_RETURN_IF_ERROR(FaultCheck("Database::AddSubclass"));
  XSQL_RETURN_IF_ERROR(GraphAddSubclass(sub, super));
  XSQL_RETURN_IF_ERROR(GraphAddInstance(sub, builtin::MetaClass()));
  XSQL_RETURN_IF_ERROR(GraphAddInstance(super, builtin::MetaClass()));
  Touch();
  return Status::OK();
}

Status Database::DeclareAttribute(const Oid& cls, const Oid& attr,
                                  const Oid& result, bool set_valued) {
  Signature sig;
  sig.method = attr;
  sig.result = result;
  sig.set_valued = set_valued;
  return DeclareSignature(cls, std::move(sig));
}

Status Database::DeclareSignature(const Oid& cls, Signature sig) {
  XSQL_RETURN_IF_ERROR(FaultCheck("Database::DeclareSignature"));
  if (!graph_.IsClass(cls)) {
    XSQL_RETURN_IF_ERROR(DeclareClass(cls));
  }
  XSQL_RETURN_IF_ERROR(RegisterMethodObject(sig.method));
  if (undo_ != nullptr && !signatures_.Has(cls, sig)) {
    Signature saved = sig;
    undo_->Record([cls, saved](Database* db) {
      db->signatures_.Remove(cls, saved);
    });
  }
  XSQL_RETURN_IF_ERROR(signatures_.Add(cls, std::move(sig)));
  Touch();
  return Status::OK();
}

Status Database::DefineMethod(const Oid& cls, const Oid& method, int arity,
                              std::shared_ptr<const MethodBody> body) {
  XSQL_RETURN_IF_ERROR(FaultCheck("Database::DefineMethod"));
  XSQL_RETURN_IF_ERROR(RegisterMethodObject(method));
  if (undo_ != nullptr) {
    std::shared_ptr<const MethodBody> prior =
        methods_.Definition(cls, method, arity);
    undo_->Record([cls, method, arity, prior](Database* db) {
      db->methods_.Restore(cls, method, arity, prior);
    });
  }
  XSQL_RETURN_IF_ERROR(methods_.Define(cls, method, arity, std::move(body)));
  Touch();
  return Status::OK();
}

Status Database::ResolveMethodConflict(const Oid& cls, const Oid& method,
                                       const Oid& from_super) {
  XSQL_RETURN_IF_ERROR(FaultCheck("Database::ResolveMethodConflict"));
  if (undo_ != nullptr) {
    std::optional<Oid> prior = methods_.ConflictChoice(cls, method);
    undo_->Record([cls, method, prior](Database* db) {
      db->methods_.RestoreConflictChoice(cls, method, prior);
    });
  }
  XSQL_RETURN_IF_ERROR(methods_.ResolveConflict(cls, method, from_super));
  Touch();
  return Status::OK();
}

Status Database::NewObject(const Oid& oid, const std::vector<Oid>& classes) {
  XSQL_RETURN_IF_ERROR(FaultCheck("Database::NewObject"));
  GetOrCreate(oid);
  for (const Oid& cls : classes) {
    XSQL_RETURN_IF_ERROR(FaultCheck("Database::NewObject#class"));
    if (!graph_.IsClass(cls)) {
      return Status::NotFound("unknown class " + cls.ToString());
    }
    XSQL_RETURN_IF_ERROR(GraphAddInstance(oid, cls));
  }
  Touch();
  return Status::OK();
}

Status Database::AddInstanceOf(const Oid& oid, const Oid& cls) {
  XSQL_RETURN_IF_ERROR(FaultCheck("Database::AddInstanceOf"));
  if (!graph_.IsClass(cls)) {
    return Status::NotFound("unknown class " + cls.ToString());
  }
  GetOrCreate(oid);
  XSQL_RETURN_IF_ERROR(GraphAddInstance(oid, cls));
  Touch();
  return Status::OK();
}

Status Database::SetScalar(const Oid& obj, const Oid& attr, const Oid& value) {
  XSQL_RETURN_IF_ERROR(FaultCheck("Database::SetScalar"));
  XSQL_RETURN_IF_ERROR(RegisterMethodObject(attr));
  RecordUndoAttr(obj, attr);
  GetOrCreate(obj).SetScalar(attr, value);
  Touch();
  return Status::OK();
}

Status Database::SetSet(const Oid& obj, const Oid& attr, OidSet values) {
  XSQL_RETURN_IF_ERROR(FaultCheck("Database::SetSet"));
  XSQL_RETURN_IF_ERROR(RegisterMethodObject(attr));
  RecordUndoAttr(obj, attr);
  GetOrCreate(obj).SetSet(attr, std::move(values));
  Touch();
  return Status::OK();
}

Status Database::AddToSet(const Oid& obj, const Oid& attr, const Oid& value) {
  XSQL_RETURN_IF_ERROR(FaultCheck("Database::AddToSet"));
  XSQL_RETURN_IF_ERROR(RegisterMethodObject(attr));
  RecordUndoAttr(obj, attr);
  XSQL_RETURN_IF_ERROR(GetOrCreate(obj).AddToSet(attr, value));
  Touch();
  return Status::OK();
}

Status Database::ClearAttribute(const Oid& obj, const Oid& attr) {
  XSQL_RETURN_IF_ERROR(FaultCheck("Database::ClearAttribute"));
  if (!HasObject(obj)) {
    return Status::NotFound("no object " + obj.ToString());
  }
  RecordUndoAttr(obj, attr);
  FindMutableRaw(obj)->Remove(attr);
  Touch();
  return Status::OK();
}

Status Database::RemoveInstanceOf(const Oid& oid, const Oid& cls) {
  XSQL_RETURN_IF_ERROR(FaultCheck("Database::RemoveInstanceOf"));
  if (undo_ != nullptr) {
    std::vector<Oid> classes = graph_.DirectClassesOf(oid);
    if (std::find(classes.begin(), classes.end(), cls) != classes.end()) {
      undo_->Record([oid, cls](Database* db) {
        (void)db->graph_.AddInstance(oid, cls);
      });
    }
  }
  graph_.RemoveInstance(oid, cls);
  Touch();
  return Status::OK();
}

void Database::Rollback(UndoLog* log) {
  UndoLog* saved = undo_;
  undo_ = nullptr;  // inverses go through raw primitives; never re-record
  log->Rollback(this);
  undo_ = saved;
  Touch();
}

const Object* Database::GetObject(const Oid& oid) const {
  const ObjectShard& shard = *objects_[ShardIndexOf(oid)];
  auto it = shard.map.find(oid);
  return it == shard.map.end() ? nullptr : &it->second;
}

Object* Database::GetMutableObject(const Oid& oid) {
  Object* obj = FindMutableRaw(oid);
  if (obj == nullptr) return nullptr;
  Touch();
  return obj;
}

const AttrValue* Database::GetAttribute(const Oid& obj, const Oid& attr) const {
  if (const Object* o = GetObject(obj)) {
    if (const AttrValue* v = o->Get(attr)) return v;
  }
  // Behavioral inheritance of defaults: walk classes upward, level by
  // level, and take the nearest class-object that defines the attribute.
  std::deque<Oid> frontier;
  for (const Oid& cls : graph_.DirectClassesOf(obj)) frontier.push_back(cls);
  OidSet visited;
  while (!frontier.empty()) {
    std::vector<const AttrValue*> hits;
    std::vector<Oid> hit_classes;
    std::deque<Oid> next;
    for (const Oid& cls : frontier) {
      if (visited.Contains(cls)) continue;
      visited.Insert(cls);
      const Object* class_obj = GetObject(cls);
      const AttrValue* v =
          class_obj == nullptr ? nullptr : class_obj->Get(attr);
      if (v != nullptr) {
        hits.push_back(v);
        hit_classes.push_back(cls);
      } else {
        for (const Oid& super : graph_.DirectSuperclasses(cls)) {
          next.push_back(super);
        }
      }
    }
    if (!hits.empty()) {
      // Deterministic pick among incomparable providers: smallest oid.
      size_t best = 0;
      for (size_t i = 1; i < hit_classes.size(); ++i) {
        if (hit_classes[i] < hit_classes[best]) best = i;
      }
      return hits[best];
    }
    frontier = next;
  }
  return nullptr;
}

bool Database::IsInstanceOf(const Oid& oid, const Oid& cls) const {
  // Literal instances of the builtin classes.
  if (oid.is_numeric()) {
    if (graph_.IsSubclassEq(builtin::Numeral(), cls)) return true;
  } else if (oid.is_string()) {
    if (graph_.IsSubclassEq(builtin::String(), cls)) return true;
  } else if (oid.is_bool()) {
    if (graph_.IsSubclassEq(builtin::Boolean(), cls)) return true;
  } else if (oid.is_nil()) {
    if (graph_.IsSubclassEq(builtin::NilClass(), cls)) return true;
  }
  return graph_.IsInstanceOf(oid, cls);
}

OidSet Database::Extent(const Oid& cls) const {
  OidSet out = graph_.Extent(cls);
  // Literal classes draw their extent from the active domain.
  const bool wants_numeral = graph_.IsSubclassEq(builtin::Numeral(), cls);
  const bool wants_string = graph_.IsSubclassEq(builtin::String(), cls);
  const bool wants_bool = graph_.IsSubclassEq(builtin::Boolean(), cls);
  const bool wants_nil = graph_.IsSubclassEq(builtin::NilClass(), cls);
  if (wants_numeral || wants_string || wants_bool || wants_nil) {
    for (const Oid& oid : ActiveDomain()) {
      if ((wants_numeral && oid.is_numeric()) ||
          (wants_string && oid.is_string()) ||
          (wants_bool && oid.is_bool()) || (wants_nil && oid.is_nil())) {
        out.Insert(oid);
      }
    }
  }
  return out;
}

const OidSet& Database::ActiveDomain() const {
  if (active_domain_dirty_ || active_domain_ == nullptr) {
    auto domain = std::make_shared<OidSet>();
    ForEachObject([&](const Oid& oid, const Object& object) {
      domain->Insert(oid);
      for (const auto& [attr, value] : object.attrs()) {
        domain->Insert(attr);
        if (value.set_valued()) {
          for (const Oid& v : value.set()) domain->Insert(v);
        } else {
          domain->Insert(value.scalar());
        }
      }
    });
    for (const Oid& cls : graph_.classes()) domain->Insert(cls);
    active_domain_ = std::move(domain);
    active_domain_dirty_ = false;
  }
  return *active_domain_;
}

Status Database::RegisterMethodObject(const Oid& attr) {
  if (!attr.is_atom()) {
    return Status::InvalidArgument("attribute/method name must be an atom: " +
                                   attr.ToString());
  }
  return GraphAddInstance(attr, builtin::MetaMethod());
}

Object& Database::GetOrCreate(const Oid& oid) {
  if (Object* existing = FindMutableRaw(oid)) return *existing;
  if (undo_ != nullptr) {
    undo_->Record([oid](Database* db) { db->EraseObjectRaw(oid); });
  }
  ObjectShard& shard = WritableShard(oid);
  return shard.map.emplace(oid, Object(oid)).first->second;
}

Status Database::FaultCheck(const char* site) {
  FaultInjector& fi = FaultInjector::Global();
  if (!fi.armed()) return Status::OK();
  return fi.Check(FaultInjector::Domain::kMutation, site);
}

Status Database::GraphDeclareClass(const Oid& cls) {
  if (undo_ != nullptr && !graph_.IsClass(cls)) {
    undo_->Record([cls](Database* db) { db->graph_.RemoveClass(cls); });
  }
  return graph_.DeclareClass(cls);
}

Status Database::GraphAddSubclass(const Oid& sub, const Oid& super) {
  if (undo_ != nullptr) {
    // AddSubclass auto-declares both endpoints before its cycle check can
    // fail, so the declarations must be undoable even on failure.
    if (!graph_.IsClass(sub)) {
      undo_->Record([sub](Database* db) { db->graph_.RemoveClass(sub); });
    }
    if (!graph_.IsClass(super)) {
      undo_->Record([super](Database* db) { db->graph_.RemoveClass(super); });
    }
    std::vector<Oid> supers = graph_.DirectSuperclasses(sub);
    if (std::find(supers.begin(), supers.end(), super) == supers.end()) {
      undo_->Record([sub, super](Database* db) {
        db->graph_.RemoveSubclassEdge(sub, super);
      });
    }
  }
  return graph_.AddSubclass(sub, super);
}

Status Database::GraphAddInstance(const Oid& obj, const Oid& cls) {
  if (undo_ != nullptr) {
    if (!graph_.IsClass(cls)) {
      undo_->Record([cls](Database* db) { db->graph_.RemoveClass(cls); });
    }
    std::vector<Oid> classes = graph_.DirectClassesOf(obj);
    if (std::find(classes.begin(), classes.end(), cls) == classes.end()) {
      undo_->Record([obj, cls](Database* db) {
        db->graph_.RemoveInstance(obj, cls);
      });
    }
  }
  return graph_.AddInstance(obj, cls);
}

void Database::RecordUndoAttr(const Oid& obj, const Oid& attr) {
  if (undo_ == nullptr) return;
  const Object* existing = GetObject(obj);
  if (existing == nullptr) {
    // The whole object record is about to be created; GetOrCreate records
    // its erasure, which discards any attribute written to it.
    return;
  }
  const AttrValue* prior = existing->Get(attr);
  if (prior == nullptr) {
    undo_->Record([obj, attr](Database* db) {
      if (Object* o = db->FindMutableRaw(obj)) o->Remove(attr);
    });
  } else if (prior->set_valued()) {
    OidSet saved = prior->set();
    undo_->Record([obj, attr, saved](Database* db) {
      if (Object* o = db->FindMutableRaw(obj)) o->SetSet(attr, saved);
    });
  } else {
    Oid saved = prior->scalar();
    undo_->Record([obj, attr, saved](Database* db) {
      if (Object* o = db->FindMutableRaw(obj)) o->SetScalar(attr, saved);
    });
  }
}

}  // namespace xsql
