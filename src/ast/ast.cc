#include "ast/ast.h"

#include <algorithm>

namespace xsql {

IdTerm IdTerm::Const(Oid oid) {
  IdTerm t;
  t.kind = Kind::kConst;
  t.value = std::move(oid);
  return t;
}

IdTerm IdTerm::Var(Variable v) {
  IdTerm t;
  t.kind = Kind::kVar;
  t.var = std::move(v);
  return t;
}

IdTerm IdTerm::Apply(std::string fn, std::vector<IdTerm> args) {
  IdTerm t;
  t.kind = Kind::kApply;
  t.fn = std::move(fn);
  t.args = std::move(args);
  return t;
}

IdTerm IdTerm::NameRef(std::string name) {
  IdTerm t;
  t.kind = Kind::kNameRef;
  t.name = std::move(name);
  return t;
}

ValueExpr ValueExpr::Path(PathExpr p) {
  ValueExpr v;
  v.kind = Kind::kPath;
  v.path = std::move(p);
  return v;
}

ValueExpr ValueExpr::Const(Oid oid) {
  PathExpr p;
  p.head = IdTerm::Const(std::move(oid));
  return Path(std::move(p));
}

ValueExpr ValueExpr::Agg(AggFn fn, PathExpr p) {
  ValueExpr v;
  v.kind = Kind::kAggregate;
  v.agg_fn = fn;
  v.path = std::move(p);
  return v;
}

ValueExpr ValueExpr::Arith(ArithOp op, ValueExpr l, ValueExpr r) {
  ValueExpr v;
  v.kind = Kind::kArith;
  v.arith_op = op;
  v.lhs = std::make_shared<ValueExpr>(std::move(l));
  v.rhs = std::make_shared<ValueExpr>(std::move(r));
  return v;
}

ValueExpr ValueExpr::Subquery(std::shared_ptr<QueryExpr> q) {
  ValueExpr v;
  v.kind = Kind::kSubquery;
  v.subquery = std::move(q);
  return v;
}

ValueExpr ValueExpr::SetLiteral(std::vector<ValueExpr> elems) {
  ValueExpr v;
  v.kind = Kind::kSetLiteral;
  v.set_elems = std::move(elems);
  return v;
}

std::shared_ptr<Condition> Condition::And(
    std::vector<std::shared_ptr<Condition>> cs) {
  auto c = std::make_shared<Condition>();
  c->kind = Kind::kAnd;
  c->children = std::move(cs);
  return c;
}

std::shared_ptr<Condition> Condition::Or(
    std::vector<std::shared_ptr<Condition>> cs) {
  auto c = std::make_shared<Condition>();
  c->kind = Kind::kOr;
  c->children = std::move(cs);
  return c;
}

std::shared_ptr<Condition> Condition::Not(std::shared_ptr<Condition> child) {
  auto c = std::make_shared<Condition>();
  c->kind = Kind::kNot;
  c->children.push_back(std::move(child));
  return c;
}

std::shared_ptr<Condition> Condition::Comparison(ValueExpr l, Quant lq,
                                                 CompOp op, Quant rq,
                                                 ValueExpr r) {
  auto c = std::make_shared<Condition>();
  c->kind = Kind::kComparison;
  c->lhs = std::move(l);
  c->rhs = std::move(r);
  c->lquant = lq;
  c->rquant = rq;
  c->comp_op = op;
  return c;
}

std::shared_ptr<Condition> Condition::SetComparison(ValueExpr l, SetOp op,
                                                    ValueExpr r) {
  auto c = std::make_shared<Condition>();
  c->kind = Kind::kSetComparison;
  c->lhs = std::move(l);
  c->rhs = std::move(r);
  c->set_op = op;
  return c;
}

std::shared_ptr<Condition> Condition::Standalone(PathExpr p) {
  auto c = std::make_shared<Condition>();
  c->kind = Kind::kStandalonePath;
  c->path = std::move(p);
  return c;
}

std::shared_ptr<Condition> Condition::SubclassOf(IdTerm sub, IdTerm super) {
  auto c = std::make_shared<Condition>();
  c->kind = Kind::kSubclassOf;
  c->sub = std::move(sub);
  c->super = std::move(super);
  return c;
}

namespace {

void CollectVarsInIdTerm(const IdTerm& term, std::vector<Variable>* out) {
  auto add = [out](const Variable& v) {
    if (std::find(out->begin(), out->end(), v) == out->end()) {
      out->push_back(v);
    }
  };
  switch (term.kind) {
    case IdTerm::Kind::kVar:
      add(term.var);
      break;
    case IdTerm::Kind::kApply:
      for (const IdTerm& a : term.args) CollectVarsInIdTerm(a, out);
      break;
    default:
      break;
  }
}

void CollectVarsInPath(const PathExpr& path, std::vector<Variable>* out) {
  auto add = [out](const Variable& v) {
    if (std::find(out->begin(), out->end(), v) == out->end()) {
      out->push_back(v);
    }
  };
  CollectVarsInIdTerm(path.head, out);
  for (const PathStep& step : path.steps) {
    if (step.kind == PathStep::Kind::kPathVar) {
      add(step.path_var);
    } else {
      if (step.method.name_is_var) add(step.method.name_var);
      for (const IdTerm& a : step.method.args) CollectVarsInIdTerm(a, out);
    }
    if (step.selector.has_value()) CollectVarsInIdTerm(*step.selector, out);
  }
}

void CollectVarsInValue(const ValueExpr& expr, std::vector<Variable>* out);

void CollectVarsInCondition(const Condition& cond, std::vector<Variable>* out) {
  switch (cond.kind) {
    case Condition::Kind::kAnd:
    case Condition::Kind::kOr:
    case Condition::Kind::kNot:
      for (const auto& child : cond.children) {
        CollectVarsInCondition(*child, out);
      }
      break;
    case Condition::Kind::kComparison:
    case Condition::Kind::kSetComparison:
      CollectVarsInValue(cond.lhs, out);
      CollectVarsInValue(cond.rhs, out);
      break;
    case Condition::Kind::kStandalonePath:
      CollectVarsInPath(cond.path, out);
      break;
    case Condition::Kind::kSubclassOf:
    case Condition::Kind::kApplicable:
      CollectVarsInIdTerm(cond.sub, out);
      CollectVarsInIdTerm(cond.super, out);
      break;
    case Condition::Kind::kUpdate:
      if (cond.update != nullptr) {
        for (const auto& assign : cond.update->assignments) {
          CollectVarsInPath(assign.target, out);
          CollectVarsInValue(assign.value, out);
        }
        if (cond.update->where != nullptr) {
          CollectVarsInCondition(*cond.update->where, out);
        }
      }
      break;
  }
}

void CollectVarsInValue(const ValueExpr& expr, std::vector<Variable>* out) {
  switch (expr.kind) {
    case ValueExpr::Kind::kPath:
    case ValueExpr::Kind::kAggregate:
      CollectVarsInPath(expr.path, out);
      break;
    case ValueExpr::Kind::kArith:
      if (expr.lhs) CollectVarsInValue(*expr.lhs, out);
      if (expr.rhs) CollectVarsInValue(*expr.rhs, out);
      break;
    case ValueExpr::Kind::kSubquery:
      // Subquery variables are scoped to the subquery; free (correlated)
      // occurrences are still collected so callers see the dependency.
      if (expr.subquery && expr.subquery->simple) {
        for (const Variable& v : CollectVariables(*expr.subquery->simple)) {
          if (std::find(out->begin(), out->end(), v) == out->end()) {
            out->push_back(v);
          }
        }
      }
      break;
    case ValueExpr::Kind::kSetLiteral:
      for (const ValueExpr& e : expr.set_elems) CollectVarsInValue(e, out);
      break;
  }
}

}  // namespace

std::vector<Variable> CollectVariables(const Query& query) {
  std::vector<Variable> out;
  auto add = [&out](const Variable& v) {
    if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
  };
  for (const FromEntry& entry : query.from) {
    CollectVarsInIdTerm(entry.cls, &out);
    add(entry.var);
  }
  for (const SelectItem& item : query.select) {
    switch (item.kind) {
      case SelectItem::Kind::kExpr:
        CollectVarsInValue(item.expr, &out);
        break;
      case SelectItem::Kind::kSetOfVar:
        add(item.set_var);
        break;
      case SelectItem::Kind::kMethodHead:
        for (const IdTerm& a : item.method_args) CollectVarsInIdTerm(a, &out);
        CollectVarsInValue(item.expr, &out);
        break;
    }
  }
  if (query.oid_function_of.has_value()) {
    for (const Variable& v : *query.oid_function_of) add(v);
  }
  if (query.where != nullptr) CollectVarsInCondition(*query.where, &out);
  return out;
}

void CollectPathExprs(const ValueExpr& expr,
                      std::vector<const PathExpr*>* out) {
  switch (expr.kind) {
    case ValueExpr::Kind::kPath:
    case ValueExpr::Kind::kAggregate:
      out->push_back(&expr.path);
      break;
    case ValueExpr::Kind::kArith:
      if (expr.lhs) CollectPathExprs(*expr.lhs, out);
      if (expr.rhs) CollectPathExprs(*expr.rhs, out);
      break;
    case ValueExpr::Kind::kSubquery:
      break;  // subquery paths are typed within the subquery
    case ValueExpr::Kind::kSetLiteral:
      for (const ValueExpr& e : expr.set_elems) CollectPathExprs(e, out);
      break;
  }
}

void CollectPathExprs(const Condition& cond,
                      std::vector<const PathExpr*>* out) {
  switch (cond.kind) {
    case Condition::Kind::kAnd:
    case Condition::Kind::kOr:
    case Condition::Kind::kNot:
      for (const auto& child : cond.children) CollectPathExprs(*child, out);
      break;
    case Condition::Kind::kComparison:
    case Condition::Kind::kSetComparison:
      CollectPathExprs(cond.lhs, out);
      CollectPathExprs(cond.rhs, out);
      break;
    case Condition::Kind::kStandalonePath:
      out->push_back(&cond.path);
      break;
    case Condition::Kind::kSubclassOf:
    case Condition::Kind::kApplicable:
    case Condition::Kind::kUpdate:
      break;
  }
}

void FlattenAnd(const Condition& cond, std::vector<const Condition*>* out) {
  if (cond.kind == Condition::Kind::kAnd) {
    for (const auto& child : cond.children) FlattenAnd(*child, out);
  } else {
    out->push_back(&cond);
  }
}

bool IsConjunctive(const Condition& cond) {
  switch (cond.kind) {
    case Condition::Kind::kAnd:
      for (const auto& child : cond.children) {
        if (!IsConjunctive(*child)) return false;
      }
      return true;
    case Condition::Kind::kOr:
    case Condition::Kind::kNot:
      return false;
    default:
      return true;
  }
}

}  // namespace xsql
