#ifndef XSQL_AST_AST_H_
#define XSQL_AST_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "oid/oid.h"

namespace xsql {

// ---------------------------------------------------------------------
// Variables
// ---------------------------------------------------------------------

/// The three sorts of variables in XSQL (§3.1): individual variables
/// range over ids of individual objects, class variables (`$X`) over
/// class-objects, method variables (`"Y`) over method/attribute-name
/// objects. A fourth, path variables (`*Y`), is the paper's sketched
/// extension — one binds to a *sequence* of attributes (we encode the
/// binding as the id-term `path(a1,...,an)`).
enum class VarSort : uint8_t {
  kIndividual = 0,
  kClass,
  kMethod,
  kPath,
};

/// A named, sorted variable.
struct Variable {
  std::string name;
  VarSort sort = VarSort::kIndividual;

  bool operator==(const Variable& other) const {
    return name == other.name && sort == other.sort;
  }
  bool operator<(const Variable& other) const {
    if (name != other.name) return name < other.name;
    return sort < other.sort;
  }
  std::string ToString() const;
};

// ---------------------------------------------------------------------
// Id-terms
// ---------------------------------------------------------------------

/// An id-term (§4.2): an oid constant, a variable, an application of an
/// id-function `f(t1,...,tn)`, or — before name resolution — a bare
/// identifier (`kNameRef`) whose reading (constant vs. individual
/// variable) depends on the schema. `ResolveNames` in the parser turns
/// every kNameRef into kConst or kVar.
struct IdTerm {
  enum class Kind : uint8_t { kConst, kVar, kApply, kNameRef };

  Kind kind = Kind::kConst;
  Oid value;                 // kConst
  Variable var;              // kVar
  std::string fn;            // kApply: id-function symbol
  std::vector<IdTerm> args;  // kApply
  std::string name;          // kNameRef: unresolved identifier

  static IdTerm Const(Oid oid);
  static IdTerm Var(Variable v);
  static IdTerm Apply(std::string fn, std::vector<IdTerm> args);
  static IdTerm NameRef(std::string name);

  bool is_const() const { return kind == Kind::kConst; }
  bool is_var() const { return kind == Kind::kVar; }
  bool is_apply() const { return kind == Kind::kApply; }

  std::string ToString() const;
};

// ---------------------------------------------------------------------
// Path expressions (§3.1, §5)
// ---------------------------------------------------------------------

/// A method expression `(Mthd @ Arg1,...,Argk)` (§5); 0-ary method
/// expressions are attribute expressions and print without parentheses.
/// The method position holds either a name (oid constant) or a method
/// variable.
struct MethodExpr {
  bool name_is_var = false;
  Oid name;           // when !name_is_var (an atom)
  Variable name_var;  // when name_is_var (sort kMethod)
  std::vector<IdTerm> args;

  std::string ToString() const;
};

/// One step of a path expression: a method expression plus an optional
/// selector, or a path variable `*Y` standing for a whole attribute
/// sequence (the paper's §3.1 extension).
struct PathStep {
  enum class Kind : uint8_t { kMethod, kPathVar };

  Kind kind = Kind::kMethod;
  MethodExpr method;                // kMethod
  Variable path_var;                // kPathVar (sort kPath)
  std::optional<IdTerm> selector;   // the bracketed `[sel]`, if present

  std::string ToString() const;
};

/// Extended path expression (2)/(11):
/// `selector0.MthdEx1[sel1]. ... .MthdExm[selm]`.
struct PathExpr {
  IdTerm head;
  std::vector<PathStep> steps;

  /// Trivial path: a bare selector (m = 0).
  bool trivial() const { return steps.empty(); }

  std::string ToString() const;
};

// ---------------------------------------------------------------------
// Value expressions
// ---------------------------------------------------------------------

struct QueryExpr;  // forward (subqueries)

/// Aggregate functions usable over path expressions (§3.2).
enum class AggFn : uint8_t { kCount, kSum, kAvg, kMin, kMax };

/// Arithmetic operators (needed by UPDATE SET expressions, §5).
enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv };

/// A value-producing expression. Every value expression evaluates to a
/// *set* of oids (the value of a path expression is the set of tails of
/// satisfying database paths, §3.2); scalar contexts require the set to
/// be a singleton.
struct ValueExpr {
  enum class Kind : uint8_t {
    kPath,        // path expression (includes bare constants/variables)
    kAggregate,   // count/sum/avg/min/max over a path expression
    kArith,       // lhs op rhs, scalar arithmetic
    kSubquery,    // (SELECT ...) used as a set
    kSetLiteral,  // {'blue', 'red'}
  };

  Kind kind = Kind::kPath;
  PathExpr path;                         // kPath, kAggregate argument
  AggFn agg_fn = AggFn::kCount;          // kAggregate
  ArithOp arith_op = ArithOp::kAdd;      // kArith
  std::shared_ptr<ValueExpr> lhs, rhs;   // kArith
  std::shared_ptr<QueryExpr> subquery;   // kSubquery
  std::vector<ValueExpr> set_elems;      // kSetLiteral

  static ValueExpr Path(PathExpr p);
  static ValueExpr Const(Oid oid);
  static ValueExpr Agg(AggFn fn, PathExpr p);
  static ValueExpr Arith(ArithOp op, ValueExpr l, ValueExpr r);
  static ValueExpr Subquery(std::shared_ptr<QueryExpr> q);
  static ValueExpr SetLiteral(std::vector<ValueExpr> elems);

  std::string ToString() const;
};

// ---------------------------------------------------------------------
// Conditions (§3.2, §3.4)
// ---------------------------------------------------------------------

/// Comparison operator of an elementary comparison.
enum class CompOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// Quantifier modifying one side of a comparison: `some>`, `=all`,
/// `all<all` (§3.2). `kNone` on a side requires that side's value to be
/// a singleton set (the comparison is then on that single element; an
/// empty or multi-element unquantified side makes the comparison false,
/// mirroring the satisfaction semantics).
enum class Quant : uint8_t { kNone, kSome, kAll };

/// Set comparators (§3.2).
enum class SetOp : uint8_t {
  kContains,    // strict superset
  kContainsEq,  // superset-or-equal
  kSubset,      // strict subset
  kSubsetEq,
  kSetEq,
};

struct UpdateClassStmt;  // forward (nested UPDATE as a condition, §5)

/// A WHERE-clause condition.
struct Condition {
  enum class Kind : uint8_t {
    kAnd,
    kOr,
    kNot,
    kComparison,      // lhs (lq op rq) rhs
    kSetComparison,   // lhs setop rhs
    kStandalonePath,  // path expression as a Boolean predicate
    kSubclassOf,      // lhs subclassOf rhs (strict, §3.1)
    kApplicable,      // "M applicableTo X: a signature of M covers X's
                      // class (§3.1's applicable-vs-defined distinction,
                      // which the paper defers to [KSK92])
    kUpdate,          // nested UPDATE CLASS ... (§5), true iff successful
  };

  Kind kind = Kind::kAnd;
  std::vector<std::shared_ptr<Condition>> children;  // kAnd, kOr, kNot(1)
  ValueExpr lhs, rhs;                                // comparisons
  CompOp comp_op = CompOp::kEq;
  Quant lquant = Quant::kNone, rquant = Quant::kNone;
  SetOp set_op = SetOp::kContainsEq;
  PathExpr path;                                     // kStandalonePath
  IdTerm sub, super;                                 // kSubclassOf;
                                                     // kApplicable: sub =
                                                     // method, super = object
  std::shared_ptr<UpdateClassStmt> update;           // kUpdate

  static std::shared_ptr<Condition> And(
      std::vector<std::shared_ptr<Condition>> cs);
  static std::shared_ptr<Condition> Or(
      std::vector<std::shared_ptr<Condition>> cs);
  static std::shared_ptr<Condition> Not(std::shared_ptr<Condition> c);
  static std::shared_ptr<Condition> Comparison(ValueExpr l, Quant lq,
                                               CompOp op, Quant rq,
                                               ValueExpr r);
  static std::shared_ptr<Condition> SetComparison(ValueExpr l, SetOp op,
                                                  ValueExpr r);
  static std::shared_ptr<Condition> Standalone(PathExpr p);
  static std::shared_ptr<Condition> SubclassOf(IdTerm sub, IdTerm super);

  std::string ToString() const;
};

// ---------------------------------------------------------------------
// Queries (§3.3, §4)
// ---------------------------------------------------------------------

/// One SELECT-clause item. Forms (§3.3, §4.1):
///   `X` / `X.Name` — a scalar path expression;
///   `EmpSalary = W.Salary` — named output attribute;
///   `Beneficiaries = {W}` — grouped set attribute (§4.1 query (8));
///   `(MngrSalary @ Y) = W` — method-definition head (§5, only inside
///    ALTER/CREATE method definitions).
struct SelectItem {
  enum class Kind : uint8_t { kExpr, kSetOfVar, kMethodHead };

  Kind kind = Kind::kExpr;
  std::optional<Oid> out_attr;  // explicit output attribute name
  ValueExpr expr;               // kExpr; kMethodHead: the result expression
  Variable set_var;             // kSetOfVar: the brace-grouped variable
  Oid method;                   // kMethodHead: method being defined
  std::vector<IdTerm> method_args;  // kMethodHead: parameter terms

  std::string ToString() const;
};

/// One FROM-clause entry `Class X` (the class may be a class variable,
/// as in the §3.1 template `FROM $X Y`).
struct FromEntry {
  IdTerm cls;
  Variable var;

  std::string ToString() const;
};

/// A SELECT-FROM-WHERE block, possibly with an OID FUNCTION OF clause
/// (§4.1) which turns result tuples into objects.
struct Query {
  std::vector<SelectItem> select;
  std::vector<FromEntry> from;
  std::shared_ptr<Condition> where;  // null = no WHERE clause
  /// OID FUNCTION OF X,W — variables the id-function depends on.
  /// `OID X` (method definitions) is sugar for a one-variable list.
  std::optional<std::vector<Variable>> oid_function_of;
  /// The id-function symbol for created objects. Set by DDL (view name)
  /// or generated by the session; empty means "plain relation result".
  std::string oid_fn_name;

  std::string ToString() const;
};

/// Query combined with the relational algebra operators the language
/// inherits from SQL (§3.3): UNION, MINUS, INTERSECT.
struct QueryExpr {
  enum class Kind : uint8_t { kSimple, kUnion, kMinus, kIntersect };

  Kind kind = Kind::kSimple;
  std::shared_ptr<Query> simple;       // kSimple
  std::shared_ptr<QueryExpr> lhs, rhs; // the set operators

  std::string ToString() const;
};

// ---------------------------------------------------------------------
// DDL / DML statements (§4.2, §5)
// ---------------------------------------------------------------------

/// `Mthd : A,B => {R1,R2}` signature declaration; multiple results are
/// the paper's abbreviation for several signatures.
struct SignatureDecl {
  Oid method;
  std::vector<Oid> args;
  std::vector<Oid> results;
  bool set_valued = false;

  std::string ToString() const;
};

/// CREATE VIEW name AS SUBCLASS OF super SIGNATURE ... SELECT ... (§4.2).
struct CreateViewStmt {
  Oid name;
  Oid superclass;
  std::vector<SignatureDecl> signatures;
  Query query;

  std::string ToString() const;
};

/// `UPDATE CLASS cls SET path = value` (§5). When nested inside a method
/// definition's WHERE clause, variables come from the enclosing scope.
struct UpdateClassStmt {
  Oid cls;
  struct Assignment {
    PathExpr target;  // last step names the attribute being written
    ValueExpr value;
  };
  std::vector<Assignment> assignments;
  /// Constraints scoped to the update — the parser's desugaring of path
  /// arguments inside SET expressions (e.g. `(MngrSalary @ Y.Name)`
  /// becomes `(MngrSalary @ Z)` with `Y.Name[Z]` here, where Y is bound
  /// per target enumerated by the assignment's prefix path).
  std::shared_ptr<Condition> where;

  std::string ToString() const;
};

/// ALTER CLASS cls ADD SIGNATURE ... SELECT (M @ args) = expr FROM ...
/// OID X WHERE ... — defines a new method on `cls` via a query (§5).
struct AlterClassStmt {
  Oid cls;
  std::vector<SignatureDecl> add_signatures;
  /// The defining query; its single SELECT item is a kMethodHead and
  /// `oid_function_of` holds the receiver variable (the `OID X` clause).
  std::optional<Query> method_def;

  std::string ToString() const;
};

/// Any parseable XSQL statement.
struct Statement {
  enum class Kind : uint8_t {
    kQuery,
    kCreateView,
    kAlterClass,
    kUpdateClass,
    /// `EXPLAIN [ANALYZE] <query expr>` — diagnostic statements: the
    /// plain form reports typing/plan verdicts without evaluating, the
    /// ANALYZE form executes `query` under a tracer, rolls every
    /// mutation back, and renders the span tree.
    kExplain,
    /// `SYSTEM METRICS` — dumps the process metrics registry as a
    /// relation (schema-as-data spirit: the engine answers queries
    /// about itself).
    kSystemMetrics,
    /// `SYSTEM STATUS` — the process status board (role, generation,
    /// WAL position, replication lag) as a relation, so operators and
    /// failover tests observe state without scraping metrics text.
    kSystemStatus,
  };

  Kind kind = Kind::kQuery;
  std::shared_ptr<QueryExpr> query;
  std::shared_ptr<CreateViewStmt> create_view;
  std::shared_ptr<AlterClassStmt> alter_class;
  std::shared_ptr<UpdateClassStmt> update_class;
  /// kExplain only: EXPLAIN ANALYZE (execute + trace) vs plain EXPLAIN.
  bool analyze = false;

  std::string ToString() const;
};

// ---------------------------------------------------------------------
// AST utilities
// ---------------------------------------------------------------------

/// Collects every variable occurring in the query (all sorts), in
/// first-occurrence order.
std::vector<Variable> CollectVariables(const Query& query);

/// Collects the path expressions appearing (conjunctively) in a
/// condition: standalone paths and paths nested in comparisons. Used by
/// the §6.2 type checker, which is defined for conjunctive WHERE
/// clauses.
void CollectPathExprs(const Condition& cond, std::vector<const PathExpr*>* out);

/// Collects path expressions in a value expression.
void CollectPathExprs(const ValueExpr& expr, std::vector<const PathExpr*>* out);

/// True if the condition is a pure conjunction of elementary conditions
/// (no OR/NOT), the fragment for which §6.2 defines well-typing.
bool IsConjunctive(const Condition& cond);

/// Flattens nested kAnd nodes into the list of top-level conjuncts, in
/// source order. The evaluator's conjunct driver and the planner must
/// agree on this decomposition (plan slots index into it).
void FlattenAnd(const Condition& cond, std::vector<const Condition*>* out);

}  // namespace xsql

#endif  // XSQL_AST_AST_H_
