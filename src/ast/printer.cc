#include "ast/printer.h"

#include "ast/ast.h"

namespace xsql {

std::string CompOpToString(CompOp op) {
  switch (op) {
    case CompOp::kEq:
      return "=";
    case CompOp::kNe:
      return "!=";
    case CompOp::kLt:
      return "<";
    case CompOp::kLe:
      return "<=";
    case CompOp::kGt:
      return ">";
    case CompOp::kGe:
      return ">=";
  }
  return "?";
}

std::string QuantToString(Quant q) {
  switch (q) {
    case Quant::kNone:
      return "";
    case Quant::kSome:
      return "some";
    case Quant::kAll:
      return "all";
  }
  return "";
}

std::string SetOpToString(SetOp op) {
  switch (op) {
    case SetOp::kContains:
      return "contains";
    case SetOp::kContainsEq:
      return "containsEq";
    case SetOp::kSubset:
      return "subset";
    case SetOp::kSubsetEq:
      return "subsetEq";
    case SetOp::kSetEq:
      return "setEq";
  }
  return "?";
}

std::string AggFnToString(AggFn fn) {
  switch (fn) {
    case AggFn::kCount:
      return "count";
    case AggFn::kSum:
      return "sum";
    case AggFn::kAvg:
      return "avg";
    case AggFn::kMin:
      return "min";
    case AggFn::kMax:
      return "max";
  }
  return "?";
}

std::string Variable::ToString() const {
  switch (sort) {
    case VarSort::kIndividual:
      return name;
    case VarSort::kClass:
      return "$" + name;
    case VarSort::kMethod:
      return "\"" + name;
    case VarSort::kPath:
      return "*" + name;
  }
  return name;
}

std::string IdTerm::ToString() const {
  switch (kind) {
    case Kind::kConst:
      return value.ToString();
    case Kind::kVar:
      return var.ToString();
    case Kind::kApply: {
      std::string out = fn + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ",";
        out += args[i].ToString();
      }
      out += ")";
      return out;
    }
    case Kind::kNameRef:
      return "?" + name + "?";  // unresolved marker; should not persist
  }
  return "?";
}

std::string MethodExpr::ToString() const {
  std::string nm = name_is_var ? name_var.ToString() : name.ToString();
  if (args.empty()) return nm;
  std::string out = "(" + nm + " @ ";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ",";
    out += args[i].ToString();
  }
  out += ")";
  return out;
}

std::string PathStep::ToString() const {
  std::string out = kind == Kind::kPathVar ? path_var.ToString()
                                           : method.ToString();
  if (selector.has_value()) out += "[" + selector->ToString() + "]";
  return out;
}

std::string PathExpr::ToString() const {
  std::string out = head.ToString();
  for (const PathStep& step : steps) {
    out += ".";
    out += step.ToString();
  }
  return out;
}

std::string ValueExpr::ToString() const {
  switch (kind) {
    case Kind::kPath:
      return path.ToString();
    case Kind::kAggregate:
      return AggFnToString(agg_fn) + "(" + path.ToString() + ")";
    case Kind::kArith: {
      const char* op = arith_op == ArithOp::kAdd   ? " + "
                       : arith_op == ArithOp::kSub ? " - "
                       : arith_op == ArithOp::kMul ? " * "
                                                   : " / ";
      return "(" + lhs->ToString() + op + rhs->ToString() + ")";
    }
    case Kind::kSubquery:
      return "(" + (subquery ? subquery->ToString() : std::string("?")) + ")";
    case Kind::kSetLiteral: {
      std::string out = "{";
      for (size_t i = 0; i < set_elems.size(); ++i) {
        if (i > 0) out += ", ";
        out += set_elems[i].ToString();
      }
      out += "}";
      return out;
    }
  }
  return "?";
}

std::string Condition::ToString() const {
  switch (kind) {
    case Kind::kAnd:
    case Kind::kOr: {
      const char* sep = kind == Kind::kAnd ? " and " : " or ";
      std::string out = "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += sep;
        out += children[i]->ToString();
      }
      out += ")";
      return out;
    }
    case Kind::kNot:
      return "not (" + children[0]->ToString() + ")";
    case Kind::kComparison: {
      std::string out = lhs.ToString() + " ";
      out += QuantToString(lquant);
      out += CompOpToString(comp_op);
      out += QuantToString(rquant);
      out += " " + rhs.ToString();
      return out;
    }
    case Kind::kSetComparison:
      return lhs.ToString() + " " + SetOpToString(set_op) + " " +
             rhs.ToString();
    case Kind::kStandalonePath:
      return path.ToString();
    case Kind::kSubclassOf:
      return sub.ToString() + " subclassOf " + super.ToString();
    case Kind::kApplicable:
      return sub.ToString() + " applicableTo " + super.ToString();
    case Kind::kUpdate:
      return update ? update->ToString() : "(update?)";
  }
  return "?";
}

std::string SelectItem::ToString() const {
  switch (kind) {
    case Kind::kExpr: {
      std::string out;
      if (out_attr.has_value()) out = out_attr->ToString() + " = ";
      return out + expr.ToString();
    }
    case Kind::kSetOfVar: {
      std::string out;
      if (out_attr.has_value()) out = out_attr->ToString() + " = ";
      return out + "{" + set_var.ToString() + "}";
    }
    case Kind::kMethodHead: {
      std::string out = "(" + method.ToString();
      if (!method_args.empty()) {
        out += " @ ";
        for (size_t i = 0; i < method_args.size(); ++i) {
          if (i > 0) out += ",";
          out += method_args[i].ToString();
        }
      }
      out += ") = " + expr.ToString();
      return out;
    }
  }
  return "?";
}

std::string FromEntry::ToString() const {
  return cls.ToString() + " " + var.ToString();
}

std::string Query::ToString() const {
  std::string out = "SELECT ";
  for (size_t i = 0; i < select.size(); ++i) {
    if (i > 0) out += ", ";
    out += select[i].ToString();
  }
  if (!from.empty()) {
    out += " FROM ";
    for (size_t i = 0; i < from.size(); ++i) {
      if (i > 0) out += ", ";
      out += from[i].ToString();
    }
  }
  if (oid_function_of.has_value()) {
    out += " OID FUNCTION OF ";
    for (size_t i = 0; i < oid_function_of->size(); ++i) {
      if (i > 0) out += ",";
      out += (*oid_function_of)[i].ToString();
    }
  }
  if (where != nullptr) out += " WHERE " + where->ToString();
  return out;
}

std::string QueryExpr::ToString() const {
  switch (kind) {
    case Kind::kSimple:
      return simple ? simple->ToString() : "?";
    case Kind::kUnion:
      return lhs->ToString() + " UNION " + rhs->ToString();
    case Kind::kMinus:
      return lhs->ToString() + " MINUS " + rhs->ToString();
    case Kind::kIntersect:
      return lhs->ToString() + " INTERSECT " + rhs->ToString();
  }
  return "?";
}

std::string SignatureDecl::ToString() const {
  std::string out = method.ToString();
  if (!args.empty()) {
    out += " : ";
    for (size_t i = 0; i < args.size(); ++i) {
      if (i > 0) out += ",";
      out += args[i].ToString();
    }
  }
  out += set_valued ? " =>> " : " => ";
  if (results.size() == 1) {
    out += results[0].ToString();
  } else {
    out += "{";
    for (size_t i = 0; i < results.size(); ++i) {
      if (i > 0) out += ",";
      out += results[i].ToString();
    }
    out += "}";
  }
  return out;
}

std::string CreateViewStmt::ToString() const {
  std::string out =
      "CREATE VIEW " + name.ToString() + " AS SUBCLASS OF " +
      superclass.ToString();
  if (!signatures.empty()) {
    out += " SIGNATURE ";
    for (size_t i = 0; i < signatures.size(); ++i) {
      if (i > 0) out += ", ";
      out += signatures[i].ToString();
    }
  }
  out += " " + query.ToString();
  return out;
}

std::string UpdateClassStmt::ToString() const {
  std::string out = "UPDATE CLASS " + cls.ToString() + " SET ";
  for (size_t i = 0; i < assignments.size(); ++i) {
    if (i > 0) out += ", ";
    out += assignments[i].target.ToString() + " = " +
           assignments[i].value.ToString();
  }
  if (where != nullptr) out += " {with " + where->ToString() + "}";
  return out;
}

std::string AlterClassStmt::ToString() const {
  std::string out = "ALTER CLASS " + cls.ToString();
  if (!add_signatures.empty()) {
    out += " ADD SIGNATURE ";
    for (size_t i = 0; i < add_signatures.size(); ++i) {
      if (i > 0) out += ", ";
      out += add_signatures[i].ToString();
    }
  }
  if (method_def.has_value()) out += " " + method_def->ToString();
  return out;
}

std::string Statement::ToString() const {
  switch (kind) {
    case Kind::kQuery:
      return query ? query->ToString() : "?";
    case Kind::kCreateView:
      return create_view ? create_view->ToString() : "?";
    case Kind::kAlterClass:
      return alter_class ? alter_class->ToString() : "?";
    case Kind::kUpdateClass:
      return update_class ? update_class->ToString() : "?";
    case Kind::kExplain:
      return std::string("EXPLAIN ") + (analyze ? "ANALYZE " : "") +
             (query ? query->ToString() : "?");
    case Kind::kSystemMetrics:
      return "SYSTEM METRICS";
    case Kind::kSystemStatus:
      return "SYSTEM STATUS";
  }
  return "?";
}

}  // namespace xsql
