#ifndef XSQL_AST_PRINTER_H_
#define XSQL_AST_PRINTER_H_

#include <string>

#include "ast/ast.h"

namespace xsql {

/// Renders comparison pieces; shared by the AST ToString methods and by
/// diagnostics in the typing module.
std::string CompOpToString(CompOp op);
std::string QuantToString(Quant q);
std::string SetOpToString(SetOp op);
std::string AggFnToString(AggFn fn);

}  // namespace xsql

#endif  // XSQL_AST_PRINTER_H_
